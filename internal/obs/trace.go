package obs

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier in the W3C trace-context shape. The
// zero value means "untraced": spans with a zero TraceID bypass tail-based
// retention and go straight to the journal ring (the pre-request-tracing
// behavior, still used by the solver stage spans).
type TraceID [16]byte

// IsZero reports whether t is the untraced sentinel.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders t as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// MarshalJSON encodes t as a hex string.
func (t TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON decodes a 32-hex-digit string.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("obs: trace id must be a JSON string")
	}
	id, ok := ParseTraceID(string(b[1 : len(b)-1]))
	if !ok {
		return fmt.Errorf("obs: malformed trace id %s", b)
	}
	*t = id
	return nil
}

// ParseTraceID parses 32 hex digits; the all-zero ID is rejected (it is the
// untraced sentinel, and the W3C spec forbids it on the wire too).
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	if t.IsZero() {
		return t, false
	}
	return t, true
}

// Trace ID generation: splitmix64 over an atomic counter mixed with a
// per-process seed. Lock-free, unique within the process, and distinct
// across processes with overwhelming probability.
var (
	traceSeed = uint64(time.Now().UnixNano())
	traceCtr  atomic.Uint64
)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID returns a fresh non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		n := traceCtr.Add(1)
		hi := splitmix64(traceSeed + n)
		lo := splitmix64(hi ^ n)
		for i := 0; i < 8; i++ {
			t[i] = byte(hi >> (8 * (7 - i)))
			t[8+i] = byte(lo >> (8 * (7 - i)))
		}
	}
	return t
}

// Tracer records finished spans into a bounded in-memory ring journal for
// post-mortem analysis (mqdp-bench -trace-dump, the server's /debug/traces).
// Starting and annotating a span touches only the span itself; the ring is
// locked once, at End. When the ring is full the oldest spans are overwritten
// and counted as dropped.
//
// Spans carrying a TraceID buffer per trace until their local root ends, then
// tail-based retention decides the whole trace's fate at once (see
// SetRetention): error traces and slow traces are always journaled, boring
// traces are sampled. Untraced spans (legacy Start) skip the buffer.
//
// All methods no-op on a nil *Tracer, so callers thread an optional tracer
// the same way they thread optional instruments.
type Tracer struct {
	ids     atomic.Uint64
	mu      sync.Mutex
	ring    []Span
	next    int
	wrapped bool
	dropped uint64

	// Tail-based retention state. slow/sampleEvery are set once at wiring
	// time (SetRetention) before concurrent use.
	slow         time.Duration
	sampleEvery  int
	sampleTick   uint64
	recorded     uint64 // spans journaled
	sampledOut   uint64 // spans discarded by the sampling decision
	pending      map[TraceID]*pendingTrace
	pendingSpans int
}

// pendingTrace buffers one in-flight trace's finished spans until its local
// root ends and the retention decision runs.
type pendingTrace struct {
	spans   []Span
	err     bool
	slow    bool
	flushed bool // overflowed to the ring already; later spans follow directly
}

const (
	// maxPendingTraces bounds the tail-sampling buffer across traces; when
	// full, spans of new traces bypass buffering and journal directly.
	maxPendingTraces = 1024
	// maxPendingSpansPerTrace bounds one trace's buffer; an oversized trace
	// is flushed to the ring and stops buffering (i.e. it is always kept).
	maxPendingSpansPerTrace = 256
)

// Span is one finished journal entry.
type Span struct {
	Trace  TraceID   `json:"trace,omitempty"`
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"` // 0 = root
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Err    string    `json:"err,omitempty"`
	Attrs  []Attr    `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Attr is one key=value span annotation.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// NewTracer returns a tracer whose journal retains the most recent capacity
// spans (minimum 1). By default every ended span is journaled; SetRetention
// turns on tail-based sampling for traced spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, capacity), pending: make(map[TraceID]*pendingTrace)}
}

// SetRetention configures tail-based retention for traced spans: a trace is
// always journaled when any of its spans errored or ran at least slow;
// otherwise one in sampleEvery boring traces is kept and the rest are
// discarded (counted in Stats().SampledOut). slow <= 0 disables the slow
// rule; sampleEvery <= 1 keeps every trace. Call before concurrent use.
func (t *Tracer) SetRetention(slow time.Duration, sampleEvery int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slow = slow
	t.sampleEvery = sampleEvery
	t.mu.Unlock()
}

// ActiveSpan is an in-flight span; it is recorded into the journal at End.
// An ActiveSpan is not safe for concurrent use (one span per goroutine).
type ActiveSpan struct {
	t     *Tracer
	span  Span
	root  bool // local root: its End triggers the trace retention decision
	ended bool
}

// Start opens an untraced root span (zero TraceID): it journals directly at
// End, bypassing tail-based retention. A nil tracer returns a nil span, on
// which every method no-ops.
func (t *Tracer) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{ID: t.ids.Add(1), Name: name, Start: time.Now()}}
}

// StartTrace opens the local root span of a fresh trace with a new 128-bit
// trace ID.
func (t *Tracer) StartTrace(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := t.Start(name)
	s.span.Trace = NewTraceID()
	s.root = true
	return s
}

// StartRemote opens a local root span continuing a trace propagated from
// another process (e.g. a traceparent header): the span joins trace and is
// parented to the remote span parentID. Its End still triggers the local
// retention decision — each process tail-samples its own portion.
func (t *Tracer) StartRemote(name string, trace TraceID, parentID uint64) *ActiveSpan {
	if t == nil {
		return nil
	}
	if trace.IsZero() {
		return t.StartTrace(name)
	}
	s := t.Start(name)
	s.span.Trace = trace
	s.span.Parent = parentID
	s.root = true
	return s
}

// Child opens a span parented to s, inheriting its trace ID.
func (s *ActiveSpan) Child(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	c := s.t.Start(name)
	c.span.Trace = s.span.Trace
	c.span.Parent = s.span.ID
	return c
}

// TraceID returns the span's trace ID (zero for untraced or nil spans).
func (s *ActiveSpan) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.span.Trace
}

// SpanID returns the span's journal ID (0 for nil spans).
func (s *ActiveSpan) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// Set annotates the span with a key=value attribute. After End it no-ops, so
// a late annotation can never mutate a journaled span's attribute array.
func (s *ActiveSpan) Set(key, val string) {
	if s != nil && !s.ended {
		s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Val: val})
	}
}

// SetInt annotates the span with an integer attribute.
func (s *ActiveSpan) SetInt(key string, v int64) {
	s.Set(key, strconv.FormatInt(v, 10))
}

// SetError marks the span failed; an errored span pins its whole trace into
// the journal regardless of sampling. A nil error no-ops.
func (s *ActiveSpan) SetError(err error) {
	if s != nil && !s.ended && err != nil {
		s.span.Err = err.Error()
	}
}

// End stamps the span and hands it to the journal (directly for untraced
// spans, via the per-trace retention buffer for traced ones). Repeated End
// calls no-op.
func (s *ActiveSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.span.End = time.Now()
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.span.Trace.IsZero() {
		t.recordLocked(s.span)
		return
	}
	pt := t.pending[s.span.Trace]
	if pt == nil {
		if s.root {
			// Whole trace is this one span (or its children overflowed the
			// pending cap earlier and the entry was dropped); decide now.
			pt = &pendingTrace{}
		} else if len(t.pending) >= maxPendingTraces {
			// Buffer full: journal directly rather than grow without bound.
			t.recordLocked(s.span)
			return
		} else {
			pt = &pendingTrace{}
			t.pending[s.span.Trace] = pt
		}
	}
	if pt.flushed {
		t.recordLocked(s.span)
		if s.root {
			delete(t.pending, s.span.Trace)
		}
		return
	}
	pt.spans = append(pt.spans, s.span)
	t.pendingSpans++
	if s.span.Err != "" {
		pt.err = true
	}
	if t.slow > 0 && s.span.Duration() >= t.slow {
		pt.slow = true
	}
	if s.root {
		delete(t.pending, s.span.Trace)
		t.pendingSpans -= len(pt.spans)
		t.finishLocked(pt)
		return
	}
	if len(pt.spans) >= maxPendingSpansPerTrace {
		// Oversized trace: flush what we have and journal the rest directly.
		for _, sp := range pt.spans {
			t.recordLocked(sp)
		}
		t.pendingSpans -= len(pt.spans)
		pt.spans = nil
		pt.flushed = true
	}
}

// finishLocked runs the tail-based retention decision for a completed trace.
// Caller holds t.mu.
func (t *Tracer) finishLocked(pt *pendingTrace) {
	keep := pt.err || pt.slow
	if !keep {
		if t.sampleEvery <= 1 {
			keep = true
		} else {
			keep = t.sampleTick%uint64(t.sampleEvery) == 0
			t.sampleTick++
		}
	}
	if !keep {
		t.sampledOut += uint64(len(pt.spans))
		return
	}
	for _, sp := range pt.spans {
		t.recordLocked(sp)
	}
}

// recordLocked writes one span into the ring. Caller holds t.mu.
func (t *Tracer) recordLocked(s Span) {
	t.recorded++
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
}

// copySpan deep-copies a ring entry so readers never alias the live Attrs
// backing array.
func copySpan(s Span) Span {
	if len(s.Attrs) > 0 {
		s.Attrs = append([]Attr(nil), s.Attrs...)
	}
	return s
}

// Spans returns the journal contents, oldest first. Attrs are deep-copied:
// the result never aliases live tracer state.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.wrapped {
		n = len(t.ring)
	}
	out := make([]Span, 0, n)
	if t.wrapped {
		for _, s := range t.ring[t.next:] {
			out = append(out, copySpan(s))
		}
	}
	for _, s := range t.ring[:t.next] {
		out = append(out, copySpan(s))
	}
	return out
}

// Trace returns every journaled span of one trace, in start order. Spans of
// the trace that were dropped (ring wrap) or are still pending the retention
// decision are not included.
func (t *Tracer) Trace(id TraceID) []Span {
	if t == nil || id.IsZero() {
		return nil
	}
	var out []Span
	for _, s := range t.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TracerStats summarizes the journal's retention behavior.
type TracerStats struct {
	Recorded   uint64 `json:"recorded"`    // spans journaled (including later overwrites)
	Dropped    uint64 `json:"dropped"`     // journaled spans lost to ring wraparound
	SampledOut uint64 `json:"sampled_out"` // spans discarded by tail sampling
	Pending    uint64 `json:"pending"`     // spans buffered awaiting their trace's root
}

// Stats returns retention counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TracerStats{
		Recorded:   t.recorded,
		Dropped:    t.dropped,
		SampledOut: t.sampledOut,
		Pending:    uint64(t.pendingSpans),
	}
}

// Dump writes the journal to w, oldest span first, one line per span:
//
//	span=ID parent=PARENT name=NAME dur=DURATION [trace=HEX] [err=ERR] [key=value ...]
//
// followed by a trailer counting retained and dropped spans.
func (t *Tracer) Dump(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	bw := bufio.NewWriter(w)
	for _, s := range spans {
		fmt.Fprintf(bw, "span=%d parent=%d name=%s dur=%s", s.ID, s.Parent, s.Name, s.Duration())
		if !s.Trace.IsZero() {
			fmt.Fprintf(bw, " trace=%s", s.Trace)
		}
		if s.Err != "" {
			fmt.Fprintf(bw, " err=%q", s.Err)
		}
		for _, a := range s.Attrs {
			fmt.Fprintf(bw, " %s=%s", a.Key, a.Val)
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "# journal: %d spans retained, %d dropped\n", len(spans), t.Dropped())
	return bw.Flush()
}
