package obs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	root := tr.StartTrace("req")
	hdr := root.Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55 (%q)", len(hdr), hdr)
	}
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent framing wrong: %q", hdr)
	}
	trace, parent, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent rejected our own header %q", hdr)
	}
	if trace != root.TraceID() {
		t.Errorf("round-tripped trace = %s, want %s", trace, root.TraceID())
	}
	if parent != root.SpanID() {
		t.Errorf("round-tripped parent = %d, want %d", parent, root.SpanID())
	}
	// Untraced and nil spans emit no header.
	if got := tr.Start("legacy").Traceparent(); got != "" {
		t.Errorf("untraced span Traceparent = %q, want empty", got)
	}
	var nilSpan *ActiveSpan
	if got := nilSpan.Traceparent(); got != "" {
		t.Errorf("nil span Traceparent = %q, want empty", got)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	good := FormatTraceparent(NewTraceID(), 42)
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", good, true},
		{"empty", "", false},
		{"short", good[:54], false},
		{"bad dash 2", "00x" + good[3:], false},
		{"reserved version ff", "ff" + good[2:], false},
		{"nonhex version", "zz" + good[2:], false},
		{"zero trace", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"zero parent", "00-" + good[3:35] + "-0000000000000000-01", false},
		{"uppercase trace", "00-" + strings.ToUpper(good[3:35]) + good[35:], false},
		{"uppercase parent", good[:36] + strings.ToUpper("00f067aa0ba902b7") + good[52:], false},
		{"version 00 trailing junk", good + "-extra", false},
		{"future version extra fields", "01" + good[2:] + "-extra", true},
		{"nonhex flags", good[:53] + "zz", false},
		{"nonhex trace", "00-" + strings.Repeat("g", 32) + good[35:], false},
	}
	for _, tc := range cases {
		_, _, ok := ParseTraceparent(tc.in)
		if ok != tc.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", tc.name, tc.in, ok, tc.ok)
		}
	}
}

func TestStartSpanContext(t *testing.T) {
	// No active span: same context back, nil child, all methods no-op.
	ctx, span := StartSpan(context.Background(), "orphan")
	if span != nil {
		t.Fatal("StartSpan without a parent must return a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("StartSpan without a parent must not wrap the context")
	}
	span.Set("k", "v")
	span.SetError(errors.New("x"))
	span.End() // must not panic

	tr := NewTracer(64)
	root := tr.StartTrace("req")
	ctx = ContextWithSpan(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("FromContext did not return the installed span")
	}
	ctx2, child := StartSpan(ctx, "stage")
	if child == nil {
		t.Fatal("StartSpan with a parent returned nil")
	}
	if child.TraceID() != root.TraceID() {
		t.Error("child did not inherit the trace ID")
	}
	if FromContext(ctx2) != child {
		t.Error("child context does not carry the child span")
	}
	child.End()
	root.End()
	spans := tr.Trace(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("journaled %d spans, want 2", len(spans))
	}
	var childSpan Span
	for _, s := range spans {
		if s.Name == "stage" {
			childSpan = s
		}
	}
	if childSpan.Parent != root.SpanID() {
		t.Errorf("child parent = %d, want %d", childSpan.Parent, root.SpanID())
	}
}

func TestTailRetentionSampling(t *testing.T) {
	tr := NewTracer(1024)
	tr.SetRetention(time.Hour, 4) // nothing is "slow"; keep 1 in 4 boring traces

	boring := func() TraceID {
		root := tr.StartTrace("req")
		root.Child("stage").End()
		root.End()
		return root.TraceID()
	}
	var kept, discarded int
	for i := 0; i < 8; i++ {
		id := boring()
		if len(tr.Trace(id)) > 0 {
			kept++
		} else {
			discarded++
		}
	}
	if kept != 2 || discarded != 6 {
		t.Errorf("sampling kept %d / discarded %d of 8 boring traces, want 2 / 6", kept, discarded)
	}

	// An errored trace is always retained, wherever the sample tick stands,
	// and the whole trace comes with it — children included.
	root := tr.StartTrace("req")
	c := root.Child("stage")
	c.SetError(errors.New("boom"))
	c.End()
	root.End()
	got := tr.Trace(root.TraceID())
	if len(got) != 2 {
		t.Fatalf("errored trace journaled %d spans, want 2", len(got))
	}

	st := tr.Stats()
	if st.SampledOut != 12 { // 6 discarded boring traces × 2 spans
		t.Errorf("SampledOut = %d, want 12", st.SampledOut)
	}
	if st.Pending != 0 {
		t.Errorf("Pending = %d, want 0 after all roots ended", st.Pending)
	}
}

func TestTailRetentionSlow(t *testing.T) {
	tr := NewTracer(64)
	tr.SetRetention(time.Nanosecond, 1<<30) // sample ~nothing, but slowness pins
	root := tr.StartTrace("req")
	time.Sleep(time.Millisecond)
	root.End()
	if len(tr.Trace(root.TraceID())) != 1 {
		t.Error("slow trace was not retained")
	}
}

func TestTailRetentionUntracedBypasses(t *testing.T) {
	tr := NewTracer(64)
	tr.SetRetention(time.Hour, 1<<30) // would sample out everything traced
	s := tr.Start("solver.stage")
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Errorf("untraced span journaled %d entries, want 1 (must bypass sampling)", got)
	}
}

// TestSetAfterEndIsNoop pins the aliasing fix: annotations after End must not
// mutate the journaled span (they used to append into the Attrs backing array
// the ring still referenced).
func TestSetAfterEndIsNoop(t *testing.T) {
	tr := NewTracer(8)
	s := tr.Start("op")
	s.Set("a", "1")
	s.End()
	s.Set("b", "2")
	s.SetError(errors.New("late"))
	s.End() // double End no-ops
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("journaled %d spans, want 1", len(spans))
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Key != "a" {
		t.Errorf("attrs = %v, want only the pre-End attr", spans[0].Attrs)
	}
	if spans[0].Err != "" {
		t.Errorf("err = %q, want empty (SetError after End must no-op)", spans[0].Err)
	}
}

// TestDumpWhileEndHammer races journal readers against span writers; run with
// -race. Before Spans deep-copied attrs, a reader walking a returned span's
// Attrs raced with the ring slot being overwritten.
func TestDumpWhileEndHammer(t *testing.T) {
	tr := NewTracer(32) // small ring: constant wraparound pressure
	tr.SetRetention(0, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				root := tr.StartTrace("req")
				c := root.Child("stage")
				c.Set("k", "v")
				c.SetInt("i", int64(i))
				c.End()
				root.SetInt("seed", int64(seed))
				root.End()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.Dump(io.Discard)
			for _, s := range tr.Spans() {
				for i := range s.Attrs {
					// Mutating the returned copy must never touch the ring.
					s.Attrs[i].Val = "clobbered"
				}
			}
			tr.Summaries()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestHistogramExemplar(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram must have no exemplar")
	}
	big, small := NewTraceID(), NewTraceID()
	h.ObserveTraced(0.5, big)
	h.ObserveTraced(0.05, small) // smaller: must not displace
	h.Observe(2)                 // untraced: never an exemplar
	v, trace, ok := h.Exemplar()
	if !ok || v != 0.5 || trace != big {
		t.Fatalf("exemplar = (%v, %s, %v), want (0.5, %s, true)", v, trace, ok, big)
	}
	h.AttachExemplar(3, TraceID{}) // zero trace no-ops
	if _, trace, _ := h.Exemplar(); trace != big {
		t.Error("zero-trace AttachExemplar displaced the exemplar")
	}

	r := NewRegistry()
	r.RegisterHistogram("mqdp_test_exemplar_seconds", "exemplar carrier", h)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `le="+Inf"} 3 # {trace_id="` + big.String() + `"} 0.5`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing exemplar suffix %q:\n%s", want, buf.String())
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("line does not match the exposition grammar: %q", line)
		}
	}
	snap := r.Snapshot()
	ex := snap.Histograms["mqdp_test_exemplar_seconds"].Exemplar
	if ex == nil || ex.TraceID != big.String() || ex.Value != 0.5 {
		t.Errorf("snapshot exemplar = %+v, want trace %s value 0.5", ex, big)
	}
}

func TestSLOMath(t *testing.T) {
	slo := NewSLO("ingest", 10*time.Millisecond, 0.9)
	var nilSLO *SLO
	nilSLO.Observe(time.Second) // no-op
	if nilSLO.Name() != "" || nilSLO.Status() != (SLOStatus{}) {
		t.Fatal("nil SLO must be inert")
	}
	slo.Observe(time.Millisecond)      // good
	slo.Observe(10 * time.Millisecond) // boundary: good
	slo.Observe(time.Second)           // bad
	st := slo.Status()
	if st.Good != 2 || st.Bad != 1 {
		t.Fatalf("good/bad = %d/%d, want 2/1", st.Good, st.Bad)
	}
	// bad fraction 1/3 against a 10% budget → burning ~3.33× allowed pace.
	want := (1.0 / 3.0) / 0.1
	if diff := st.BurnRate - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("burn rate = %v, want %v", st.BurnRate, want)
	}
	if diff := st.WindowBurnRate - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("window burn rate = %v, want %v (all observations are recent)", st.WindowBurnRate, want)
	}
	if st.ObjectiveSeconds != 0.01 || st.Target != 0.9 {
		t.Errorf("status identity = %+v", st)
	}

	// Out-of-range targets clamp.
	if NewSLO("x", time.Second, 1.5).Status().Target != 0.99 {
		t.Error("target > 1 must clamp to 0.99")
	}

	r := NewRegistry()
	slo.Register(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mqdp_slo_ingest_good_total 2", "mqdp_slo_ingest_bad_total 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestSummariesAndTree(t *testing.T) {
	tr := NewTracer(64)
	tr.SetRetention(0, 1)
	root := tr.StartTrace("http.ingest")
	a := root.Child("server.admit")
	a.End()
	b := root.Child("ingest.post")
	c := b.Child("sub.process")
	c.SetError(errors.New("boom"))
	c.End()
	b.End()
	root.End()

	sums := tr.Summaries()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d, want 1", len(sums))
	}
	sum := sums[0]
	if sum.Trace != root.TraceID() || sum.Root != "http.ingest" || sum.Spans != 4 || sum.Errors != 1 {
		t.Errorf("summary = %+v", sum)
	}

	roots := BuildTraceTree(tr.Trace(root.TraceID()))
	if len(roots) != 1 || roots[0].Name != "http.ingest" {
		t.Fatalf("tree roots = %v", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(roots[0].Children))
	}
	if roots[0].Children[0].Name != "server.admit" {
		t.Error("siblings not in start order")
	}
	deep := roots[0].Children[1]
	if deep.Name != "ingest.post" || len(deep.Children) != 1 || deep.Children[0].Name != "sub.process" {
		t.Errorf("nesting wrong: %+v", deep)
	}

	var buf bytes.Buffer
	if err := WriteTraceTree(&buf, roots); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "http.ingest ") ||
		!strings.Contains(text, "\n  server.admit ") ||
		!strings.Contains(text, "\n    sub.process ") ||
		!strings.Contains(text, `err="boom"`) {
		t.Errorf("tree text rendering wrong:\n%s", text)
	}
}
