package obs

import "testing"

func TestHistogramStateRoundTrip(t *testing.T) {
	h := NewHistogram(DelayBuckets)
	for _, v := range []float64{0.1, 0.5, 3, 17, 1000, 0.26} {
		h.Observe(v)
	}
	r := RestoreHistogram(h.State())
	if r.Count() != h.Count() || r.Sum() != h.Sum() || r.Max() != h.Max() {
		t.Fatalf("restored count/sum/max %d/%v/%v, want %d/%v/%v",
			r.Count(), r.Sum(), r.Max(), h.Count(), h.Sum(), h.Max())
	}
	for i := 0; i < h.NumBuckets(); i++ {
		if r.BucketCount(i) != h.BucketCount(i) {
			t.Fatalf("bucket %d: restored %d, want %d", i, r.BucketCount(i), h.BucketCount(i))
		}
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if r.Quantile(q) != h.Quantile(q) {
			t.Fatalf("quantile %v differs after restore", q)
		}
	}
	// Both keep observing identically.
	h.Observe(42)
	r.Observe(42)
	if r.Quantile(0.95) != h.Quantile(0.95) || r.Max() != h.Max() {
		t.Fatal("restored histogram diverged on further observations")
	}

	// Empty round trip.
	e := RestoreHistogram(NewHistogram(nil).State())
	if e.Count() != 0 || e.Max() != 0 {
		t.Fatal("empty histogram round trip not empty")
	}
}
