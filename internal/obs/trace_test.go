package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestTracerParentLinkingAndAttrs(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("solve")
	root.SetInt("posts", 1234)
	child := root.Child("sweep")
	child.Set("phase", "candidate")
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("journal has %d spans, want 2", len(spans))
	}
	// End order: child first.
	if spans[0].Name != "sweep" || spans[1].Name != "solve" {
		t.Fatalf("span order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, want %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Fatalf("root parent = %d, want 0", spans[1].Parent)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0] != (Attr{Key: "posts", Val: "1234"}) {
		t.Fatalf("root attrs = %v", spans[1].Attrs)
	}
	if spans[0].Duration() < 0 {
		t.Fatal("negative span duration")
	}
}

// TestTracerRingBounded: the journal keeps exactly the most recent capacity
// spans and counts the overwritten ones as dropped.
func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		s := tr.Start(fmt.Sprintf("s%d", i))
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i+6); s.Name != want {
			t.Errorf("span %d = %s, want %s (oldest-first)", i, s.Name, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerDump(t *testing.T) {
	tr := NewTracer(8)
	s := tr.Start("scan")
	s.Set("algo", "Scan+")
	s.End()
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "name=scan") || !strings.Contains(out, "algo=Scan+") {
		t.Fatalf("dump missing span line: %q", out)
	}
	if !strings.Contains(out, "# journal: 1 spans retained, 0 dropped") {
		t.Fatalf("dump missing trailer: %q", out)
	}
}
