package obs

import (
	"io"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	if got := c.Add(4); got != 5 {
		t.Fatalf("Add returned %d, want 5", got)
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("test_total", ""); again != c {
		t.Fatal("re-registering a counter returned a different instrument")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestNilFastPaths(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", TimeBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	// Every method must be a safe no-op.
	c.Inc()
	if c.Add(3) != 0 || c.Value() != 0 {
		t.Fatal("nil counter not a no-op")
	}
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge not a no-op")
	}
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not a no-op")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var tr *Tracer
	sp := tr.Start("noop")
	sp.Set("k", "v")
	sp.Child("c").End()
	sp.End()
	if tr.Spans() != nil || tr.Dump(io.Discard) != nil {
		t.Fatal("nil tracer not a no-op")
	}
	if r.Tracer() != nil {
		t.Fatal("nil registry returned a tracer")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering clash as gauge after counter did not panic")
		}
	}()
	r.Gauge("clash", "")
}

func TestRegisterAdoptsExistingInstruments(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	r.RegisterCounter("adopted_total", "pre-existing", &c)
	c.Inc()
	if got := r.Snapshot().Counters["adopted_total"]; got != 8 {
		t.Fatalf("adopted counter = %d, want 8", got)
	}
	h := NewHistogram([]float64{1, 2})
	h.Observe(1.5)
	r.RegisterHistogram("adopted_seconds", "", h)
	if got := r.Snapshot().Histograms["adopted_seconds"].Count; got != 1 {
		t.Fatalf("adopted histogram count = %d, want 1", got)
	}
}

// TestConcurrencyHammer pounds one registry with parallel increments,
// observations and snapshot/exposition reads; run under -race it proves the
// hot paths are data-race free, and the final totals prove no update is lost.
func TestConcurrencyHammer(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(64)
	r.SetTracer(tr)
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_seconds", "", []float64{0.25, 0.5, 0.75})

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
				if i%100 == 0 {
					sp := r.Tracer().Start("hammer")
					sp.SetInt("worker", int64(w))
					sp.End()
				}
			}
		}()
	}
	// Concurrent readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Snapshot()
				_ = r.WritePrometheus(io.Discard)
				_ = tr.Spans()
			}
		}()
	}
	wg.Wait()

	const n = workers * perWorker
	if c.Value() != n {
		t.Errorf("counter = %d, want %d", c.Value(), n)
	}
	if g.Value() != n {
		t.Errorf("gauge = %v, want %d", g.Value(), n)
	}
	if h.Count() != n {
		t.Errorf("histogram count = %d, want %d", h.Count(), n)
	}
	var cum int64
	for i := 0; i < h.NumBuckets(); i++ {
		cum += h.BucketCount(i)
	}
	if cum != n {
		t.Errorf("bucket counts sum to %d, want %d", cum, n)
	}
	if h.Max() != 0.99 {
		t.Errorf("max = %v, want 0.99", h.Max())
	}
	if got := len(tr.Spans()); got != 64 {
		t.Errorf("ring retained %d spans, want 64 (capacity)", got)
	}
}
