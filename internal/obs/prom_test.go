package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches one exposition sample: name, optional {le="..."} label
// set, a value, and an optional exemplar suffix on +Inf bucket lines.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (-?[0-9.eE+Inf]+)( # \{trace_id="[0-9a-f]{32}"\} -?[0-9.eE+Inf]+)?$`)

func buildSampleRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("mqdp_test_things_total", "things done")
	c.Add(3)
	g := r.Gauge("mqdp_test_level", "current level")
	g.Set(1.5)
	h := r.Histogram("mqdp_test_lat_seconds", "latency with \\ and\nnewline", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	return r
}

// TestWritePrometheusFormat parses the exposition line by line: every sample
// matches the text format grammar, every metric has a TYPE header (and a HELP
// header when help was given), histogram buckets are cumulative and ordered,
// and _count agrees with the +Inf bucket.
func TestWritePrometheusFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	types := map[string]string{}
	helps := map[string]string{}
	var samples []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			types[f[0]] = f[1]
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			helps[f[0]] = f[1]
		default:
			if !sampleLine.MatchString(line) {
				t.Fatalf("line does not match the exposition grammar: %q", line)
			}
			samples = append(samples, line)
		}
	}
	if types["mqdp_test_things_total"] != "counter" ||
		types["mqdp_test_level"] != "gauge" ||
		types["mqdp_test_lat_seconds"] != "histogram" {
		t.Fatalf("TYPE headers wrong: %v", types)
	}
	if !strings.Contains(helps["mqdp_test_lat_seconds"], `\\`) || !strings.Contains(helps["mqdp_test_lat_seconds"], `\n`) {
		t.Fatalf("HELP not escaped: %q", helps["mqdp_test_lat_seconds"])
	}

	wantSamples := map[string]string{
		`mqdp_test_things_total`:                  "3",
		`mqdp_test_level`:                         "1.5",
		`mqdp_test_lat_seconds_bucket{le="0.1"}`:  "1",
		`mqdp_test_lat_seconds_bucket{le="1"}`:    "2",
		`mqdp_test_lat_seconds_bucket{le="+Inf"}`: "3",
		`mqdp_test_lat_seconds_count`:             "3",
	}
	got := map[string]string{}
	for _, s := range samples {
		i := strings.LastIndexByte(s, ' ')
		got[s[:i]] = s[i+1:]
	}
	for k, want := range wantSamples {
		if got[k] != want {
			t.Errorf("sample %s = %q, want %q", k, got[k], want)
		}
	}
	if sum, err := strconv.ParseFloat(got["mqdp_test_lat_seconds_sum"], 64); err != nil || sum != 2.55 {
		t.Errorf("histogram sum = %q, want 2.55", got["mqdp_test_lat_seconds_sum"])
	}
	// Deterministic: a second write is byte-identical.
	var again bytes.Buffer
	r2 := buildSampleRegistry()
	if err := r2.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("exposition is not deterministic across identical registries")
	}
}

func TestSnapshotJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["mqdp_test_things_total"] != 3 {
		t.Errorf("counter snapshot = %d, want 3", s.Counters["mqdp_test_things_total"])
	}
	h := s.Histograms["mqdp_test_lat_seconds"]
	if h.Count != 3 || h.Max != 2 {
		t.Errorf("histogram snapshot = %+v, want count 3 max 2", h)
	}
	if len(h.Buckets) != 3 || h.Buckets[2].LE != "+Inf" || h.Buckets[2].Count != 3 {
		t.Errorf("buckets = %+v, want cumulative with +Inf last", h.Buckets)
	}
}
