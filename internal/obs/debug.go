package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// TraceSummary is one trace as listed by /debug/traces: identity, root name,
// extent and span/error counts, computed over the journaled spans.
type TraceSummary struct {
	Trace      TraceID   `json:"trace"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Errors     int       `json:"errors"`
}

// Summaries groups the journal's traced spans by trace ID, most recent
// first. Untraced spans are skipped. The duration is the extent from the
// earliest start to the latest end across the trace's journaled spans; the
// root name is the journaled span without a journaled parent (the request
// span, for server traces).
func (t *Tracer) Summaries() []TraceSummary {
	if t == nil {
		return nil
	}
	byTrace := map[TraceID][]Span{}
	for _, s := range t.Spans() {
		if s.Trace.IsZero() {
			continue
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for id, spans := range byTrace {
		ids := make(map[uint64]bool, len(spans))
		for _, s := range spans {
			ids[s.ID] = true
		}
		sum := TraceSummary{Trace: id, Spans: len(spans)}
		first, last := spans[0].Start, spans[0].End
		var rootStart time.Time
		for _, s := range spans {
			if s.Start.Before(first) {
				first = s.Start
			}
			if s.End.After(last) {
				last = s.End
			}
			if s.Err != "" {
				sum.Errors++
			}
			if !ids[s.Parent] && (sum.Root == "" || s.Start.Before(rootStart)) {
				sum.Root, rootStart = s.Name, s.Start
			}
		}
		sum.Start = first
		sum.DurationMS = float64(last.Sub(first)) / float64(time.Millisecond)
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].Trace.String() < out[j].Trace.String()
	})
	return out
}

// TraceNode is one span in a parent-linked trace tree.
type TraceNode struct {
	Span
	Children []*TraceNode `json:"children,omitempty"`
}

// BuildTraceTree links spans into parent→child trees. Spans whose parent is
// not in the set (the request root, or orphans whose parent was dropped from
// the ring) become roots. Siblings sort by start time.
func BuildTraceTree(spans []Span) []*TraceNode {
	nodes := make(map[uint64]*TraceNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &TraceNode{Span: s}
	}
	var roots []*TraceNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*TraceNode) {
	sort.SliceStable(ns, func(i, j int) bool {
		if !ns[i].Start.Equal(ns[j].Start) {
			return ns[i].Start.Before(ns[j].Start)
		}
		return ns[i].ID < ns[j].ID
	})
}

// WriteTraceTree renders trace trees as indented text, one span per line:
//
//	http.ingest 1.21ms span=12 status=200
//	  server.admit 8µs
//	  ingest.post 1.1ms post_id=42
func WriteTraceTree(w io.Writer, roots []*TraceNode) error {
	bw := bufio.NewWriter(w)
	for _, r := range roots {
		writeNode(bw, r, 0)
	}
	return bw.Flush()
}

func writeNode(bw *bufio.Writer, n *TraceNode, depth int) {
	for i := 0; i < depth; i++ {
		bw.WriteString("  ")
	}
	fmt.Fprintf(bw, "%s %s span=%d", n.Name, n.Duration(), n.ID)
	if n.Err != "" {
		fmt.Fprintf(bw, " err=%q", n.Err)
	}
	for _, a := range n.Attrs {
		fmt.Fprintf(bw, " %s=%s", a.Key, a.Val)
	}
	bw.WriteByte('\n')
	for _, c := range n.Children {
		writeNode(bw, c, depth+1)
	}
}
