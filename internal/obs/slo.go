package obs

import (
	"sync"
	"time"
)

// SLO tracks one latency objective: requests completing within Objective are
// "good", the rest "bad", and the burn rate compares the observed bad
// fraction to the target's error budget. A target of 0.99 allows 1% bad;
// burn rate 1.0 means the budget is being consumed exactly at the allowed
// pace, >1 means faster (an alert condition), <1 means headroom.
//
// Observations are two counter increments plus a mutex-guarded window slot
// update — cheap at HTTP-request rate. All methods no-op on a nil *SLO, so
// the server threads unconfigured SLOs for free.
type SLO struct {
	name      string
	objective time.Duration
	target    float64
	good      *Counter
	bad       *Counter

	mu    sync.Mutex
	slots [sloSlots]sloSlot // rolling window for the recent burn rate
}

// The rolling window is sloSlots slots of sloSlotDur each (5 minutes total),
// the classic fast-burn alerting window.
const (
	sloSlots   = 30
	sloSlotDur = 10 * time.Second
)

type sloSlot struct {
	epoch     int64 // unix time / sloSlotDur; stale slots are reset on use
	good, bad int64
}

// NewSLO returns an SLO named name (lowercase, no spaces — it becomes part
// of metric names) with the given latency objective and availability target
// in (0, 1); out-of-range targets clamp to 0.99.
func NewSLO(name string, objective time.Duration, target float64) *SLO {
	if target <= 0 || target >= 1 {
		target = 0.99
	}
	return &SLO{
		name:      name,
		objective: objective,
		target:    target,
		good:      &Counter{},
		bad:       &Counter{},
	}
}

// Register exposes the SLO's good/bad counters on r as
// mqdp_slo_<name>_good_total / mqdp_slo_<name>_bad_total.
func (s *SLO) Register(r *Registry) {
	if s == nil || r == nil {
		return
	}
	r.RegisterCounter("mqdp_slo_"+s.name+"_good_total",
		"requests meeting the "+s.name+" latency objective", s.good)
	r.RegisterCounter("mqdp_slo_"+s.name+"_bad_total",
		"requests missing the "+s.name+" latency objective", s.bad)
}

// Observe classifies one request latency.
func (s *SLO) Observe(d time.Duration) {
	if s == nil {
		return
	}
	good := d <= s.objective
	if good {
		s.good.Inc()
	} else {
		s.bad.Inc()
	}
	epoch := time.Now().UnixNano() / int64(sloSlotDur)
	s.mu.Lock()
	slot := &s.slots[epoch%sloSlots]
	if slot.epoch != epoch {
		*slot = sloSlot{epoch: epoch}
	}
	if good {
		slot.good++
	} else {
		slot.bad++
	}
	s.mu.Unlock()
}

// Name returns the SLO's name.
func (s *SLO) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SLOStatus is the JSON form of one SLO's state, served under /metrics.
type SLOStatus struct {
	Name             string  `json:"name"`
	ObjectiveSeconds float64 `json:"objective_seconds"`
	Target           float64 `json:"target"`
	Good             int64   `json:"good"`
	Bad              int64   `json:"bad"`
	// BurnRate is cumulative since process start; WindowBurnRate covers the
	// trailing WindowSeconds. Both are badFraction / (1 - target); 0 with no
	// observations.
	BurnRate       float64 `json:"burn_rate"`
	WindowBurnRate float64 `json:"window_burn_rate"`
	WindowSeconds  float64 `json:"window_seconds"`
}

// Status computes the current SLO state.
func (s *SLO) Status() SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	st := SLOStatus{
		Name:             s.name,
		ObjectiveSeconds: s.objective.Seconds(),
		Target:           s.target,
		Good:             s.good.Value(),
		Bad:              s.bad.Value(),
		WindowSeconds:    (sloSlots * sloSlotDur).Seconds(),
	}
	st.BurnRate = burnRate(st.Good, st.Bad, s.target)
	now := time.Now().UnixNano() / int64(sloSlotDur)
	var wg, wb int64
	s.mu.Lock()
	for i := range s.slots {
		if now-s.slots[i].epoch < sloSlots {
			wg += s.slots[i].good
			wb += s.slots[i].bad
		}
	}
	s.mu.Unlock()
	st.WindowBurnRate = burnRate(wg, wb, s.target)
	return st
}

func burnRate(good, bad int64, target float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}
