package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered instrument in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE header per metric,
// counters and gauges as single samples, histograms as cumulative
// `le`-labelled _bucket series plus _sum and _count. Metrics are emitted in
// sorted name order, so the output is deterministic for deterministic
// instrument state. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, name := range r.names() {
		k := r.kinds[name]
		writeHeader(bw, name, r.help[name], k)
		switch k {
		case kindCounter:
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(r.counters[name].Value(), 10))
			bw.WriteByte('\n')
		case kindGauge:
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(r.gauges[name].Value()))
			bw.WriteByte('\n')
		case kindHistogram:
			writeHistogram(bw, name, r.hists[name])
		}
	}
	return bw.Flush()
}

func writeHeader(bw *bufio.Writer, name, help string, k kind) {
	if help != "" {
		bw.WriteString("# HELP ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(help))
		bw.WriteByte('\n')
	}
	bw.WriteString("# TYPE ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(k.String())
	bw.WriteByte('\n')
}

func writeHistogram(bw *bufio.Writer, name string, h *Histogram) {
	cum := int64(0)
	for i := 0; i < h.NumBuckets(); i++ {
		cum += h.BucketCount(i)
		bw.WriteString(name)
		bw.WriteString(`_bucket{le="`)
		bw.WriteString(formatLe(h.BucketBound(i)))
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatInt(cum, 10))
		// OpenMetrics-style exemplar on the +Inf bucket: links the
		// histogram's largest traced observation to its trace ID.
		if i == h.NumBuckets()-1 {
			if v, trace, ok := h.Exemplar(); ok {
				bw.WriteString(` # {trace_id="`)
				bw.WriteString(trace.String())
				bw.WriteString(`"} `)
				bw.WriteString(formatFloat(v))
			}
		}
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_sum ")
	bw.WriteString(formatFloat(h.Sum()))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count ")
	bw.WriteString(strconv.FormatInt(h.Count(), 10))
	bw.WriteByte('\n')
}

func formatLe(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return formatFloat(b)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Snapshot is the JSON form of the registry state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot summarizes one histogram: exact count/sum/max, bucket
// counts (cumulative, mirroring the Prometheus exposition) and estimated
// quantiles.
type HistogramSnapshot struct {
	Count    int64             `json:"count"`
	Sum      float64           `json:"sum"`
	Max      float64           `json:"max"`
	Buckets  []Bucket          `json:"buckets"`
	P50      float64           `json:"p50"`
	P95      float64           `json:"p95"`
	P99      float64           `json:"p99"`
	Exemplar *ExemplarSnapshot `json:"exemplar,omitempty"`
}

// ExemplarSnapshot links a histogram's largest traced observation to the
// trace that produced it.
type ExemplarSnapshot struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// Bucket is one cumulative histogram bucket; LE is "+Inf" for the last.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot captures the current instrument values. A nil registry returns an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
		cum := int64(0)
		for i := 0; i < h.NumBuckets(); i++ {
			cum += h.BucketCount(i)
			hs.Buckets = append(hs.Buckets, Bucket{LE: formatLe(h.BucketBound(i)), Count: cum})
		}
		if v, trace, ok := h.Exemplar(); ok {
			hs.Exemplar = &ExemplarSnapshot{TraceID: trace.String(), Value: v}
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (map keys sort, so output
// is deterministic for deterministic state).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
