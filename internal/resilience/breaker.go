package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (wrapped) by callers that fail fast because
// their circuit breaker is open.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState int32

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome
	// closes the breaker again or re-opens it for another cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a three-state circuit breaker: threshold consecutive
// failures trip it open, a cooldown later one probe is let through
// (half-open), and the probe's outcome either closes it or re-opens it.
// All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	// OnTransition, if set, is called (outside mu is NOT guaranteed —
	// it runs under the breaker lock, so keep it cheap: bump a counter)
	// on every state change.
	OnTransition func(from, to BreakerState)
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and probes again after cooldown. threshold ≤ 0
// defaults to 5; cooldown ≤ 0 defaults to 1s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's time source (tests only).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// State reports the current state, promoting open → half-open if the
// cooldown has elapsed (without admitting a probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a request may proceed. In the open state it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe; further calls fail fast until Record settles the
// probe. Every Allow must be paired with a Record when it returns true.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Record settles one allowed request. A success closes the breaker and
// clears the failure count; a failure increments it and, at threshold
// (or during a half-open probe), opens the breaker.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.fails = 0
		b.probing = false
		if b.state != BreakerClosed {
			b.transition(BreakerClosed)
		}
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.transition(BreakerOpen)
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = b.now()
			b.transition(BreakerOpen)
		}
	case BreakerOpen:
		// A straggler settling after the trip; the breaker is already open.
	}
}

// transition flips the state and fires the hook. Caller holds b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	if b.OnTransition != nil && from != to {
		b.OnTransition(from, to)
	}
}
