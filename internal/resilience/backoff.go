// Package resilience is the repo's stdlib-only fault-tolerance toolkit:
// exponential backoff with decorrelated jitter, a three-state circuit
// breaker, a token-bucket rate limiter and an in-flight admission
// semaphore, plus a context-aware retry driver that propagates
// per-attempt deadlines. Every component takes an injectable clock
// and/or RNG seed so tests (and the deterministic chaos harness in
// internal/faultinject) replay byte-identically.
//
// The pieces are deliberately decoupled: the pub/sub server composes
// TokenBucket + Inflight into its admission controller, while the HTTP
// client composes Backoff + Breaker into its RetryPolicy. Nothing here
// imports anything above the standard library.
package resilience

import (
	"context"
	"math/rand"
	"time"
)

// Backoff produces retry delays using "decorrelated jitter": each delay
// is drawn uniformly from [base, 3×previous], clamped to cap. Compared
// with plain exponential backoff this spreads a burst of retrying
// clients across the whole window instead of synchronizing them on the
// powers of two, while still growing toward cap on repeated failure.
//
// A Backoff is seeded and single-goroutine: give each retry loop its
// own instance (they are two words plus an RNG) rather than sharing one.
type Backoff struct {
	base, cap time.Duration
	prev      time.Duration
	rng       *rand.Rand
}

// NewBackoff returns a decorrelated-jitter backoff over [base, cap]
// driven by a deterministic RNG seeded with seed. base and cap are
// defaulted to 50ms and 5s when nonpositive; cap is raised to base.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 5 * time.Second
	}
	if cap < base {
		cap = base
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next delay. The first call returns base exactly, so
// a single transient failure costs a predictable, minimal pause.
func (b *Backoff) Next() time.Duration {
	if b.prev == 0 {
		b.prev = b.base
		return b.base
	}
	hi := 3 * b.prev
	if hi > b.cap {
		hi = b.cap
	}
	d := b.base
	if span := int64(hi - b.base); span > 0 {
		d += time.Duration(b.rng.Int63n(span + 1))
	}
	b.prev = d
	return d
}

// Reset forgets the failure history; the next delay is base again.
func (b *Backoff) Reset() { b.prev = 0 }

// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
// latter case. Retry loops use it so cancellation cuts a backoff short.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
