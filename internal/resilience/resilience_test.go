package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	mk := func() *Backoff { return NewBackoff(10*time.Millisecond, 200*time.Millisecond, 42) }
	a, b := mk(), mk()
	var prevHi time.Duration = 10 * time.Millisecond
	for i := 0; i < 20; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < 10*time.Millisecond || da > 200*time.Millisecond {
			t.Fatalf("step %d: delay %v outside [base, cap]", i, da)
		}
		// Decorrelated jitter: each delay ≤ 3×previous (clamped to cap).
		if hi := 3 * prevHi; da > hi && hi <= 200*time.Millisecond {
			t.Fatalf("step %d: delay %v exceeds 3×prev (%v)", i, da, hi)
		}
		prevHi = da
	}
	if first := mk().Next(); first != 10*time.Millisecond {
		t.Errorf("first delay = %v, want base exactly", first)
	}
	a.Reset()
	if d := a.Next(); d != 10*time.Millisecond {
		t.Errorf("post-Reset delay = %v, want base", d)
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if d := b.Next(); d != 50*time.Millisecond {
		t.Errorf("default base = %v, want 50ms", d)
	}
	// cap below base is raised to base.
	b = NewBackoff(time.Second, time.Millisecond, 1)
	for i := 0; i < 5; i++ {
		if d := b.Next(); d != time.Second {
			t.Errorf("cap<base: delay = %v, want base", d)
		}
	}
}

func TestSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep on canceled ctx = %v", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep(0) = %v", err)
	}
}

// fakeClock is a settable time source shared by breaker/bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var transitions []string
	b := NewBreaker(3, time.Second)
	b.SetClock(clk.now)
	b.OnTransition = func(from, to BreakerState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	}

	// Two failures: still closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
		b.Record(false)
	}
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state after 2 failures = %v", s)
	}
	// Third consecutive failure trips it.
	b.Allow()
	b.Record(false)
	if s := b.State(); s != BreakerOpen {
		t.Fatalf("state after 3 failures = %v", s)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}
	// Cooldown elapses: exactly one probe is admitted.
	clk.advance(time.Second)
	if s := b.State(); s != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v", s)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("second probe admitted while first in flight")
	}
	// Failed probe: open again for a fresh cooldown.
	b.Record(false)
	if b.Allow() {
		t.Fatal("breaker allowed right after failed probe")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	b.Record(true)
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state after successful probe = %v", s)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused after recovery")
	}
	b.Record(true)

	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker(2, time.Second)
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Record(false)
		b.Allow()
		b.Record(true) // alternate: never two consecutive failures
	}
	if s := b.State(); s != BreakerClosed {
		t.Errorf("alternating outcomes tripped the breaker: %v", s)
	}
}

func TestTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tb := NewTokenBucket(10, 3) // 10 tokens/s, burst 3
	tb.SetClock(clk.now)
	for i := 0; i < 3; i++ {
		if !tb.Allow(1) {
			t.Fatalf("burst request %d refused", i)
		}
	}
	if tb.Allow(1) {
		t.Fatal("empty bucket allowed")
	}
	if ra := tb.RetryAfter(); ra <= 0 || ra > 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want (0, 100ms]", ra)
	}
	clk.advance(100 * time.Millisecond) // one token refills
	if !tb.Allow(1) {
		t.Fatal("refilled token refused")
	}
	if tb.Allow(1) {
		t.Fatal("second token allowed after a single refill")
	}
	// Refill clamps at burst.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !tb.Allow(1) {
			t.Fatalf("post-idle request %d refused", i)
		}
	}
	if tb.Allow(1) {
		t.Fatal("burst cap not enforced after idle")
	}
}

func TestTokenBucketZeroRateNeverRefills(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tb := NewTokenBucket(0, 2)
	tb.SetClock(clk.now)
	if !tb.Allow(1) || !tb.Allow(1) {
		t.Fatal("initial burst refused")
	}
	clk.advance(time.Hour)
	if tb.Allow(1) {
		t.Fatal("zero-rate bucket refilled")
	}
	if ra := tb.RetryAfter(); ra != time.Hour {
		t.Errorf("zero-rate RetryAfter = %v, want 1h sentinel", ra)
	}
}

func TestInflight(t *testing.T) {
	f := NewInflight(2)
	if f.Cap() != 2 {
		t.Fatalf("Cap = %d", f.Cap())
	}
	if !f.TryAcquire() || !f.TryAcquire() {
		t.Fatal("capacity refused")
	}
	if f.TryAcquire() {
		t.Fatal("over-capacity admitted")
	}
	if f.InUse() != 2 {
		t.Fatalf("InUse = %d", f.InUse())
	}
	// Acquire blocks until a slot frees.
	done := make(chan error, 1)
	go func() { done <- f.Acquire(context.Background()) }()
	select {
	case <-done:
		t.Fatal("Acquire returned with no free slot")
	case <-time.After(20 * time.Millisecond):
	}
	f.Release()
	if err := <-done; err != nil {
		t.Fatalf("Acquire after release = %v", err)
	}
	// Acquire honors context cancellation.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := f.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Acquire = %v, want deadline exceeded", err)
	}
}

func TestDoRetriesAndClassifies(t *testing.T) {
	calls := 0
	err := Do(context.Background(), RetryConfig{MaxAttempts: 4, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond, Seed: 1},
		func(ctx context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success on 3rd", err, calls)
	}

	// Non-retryable error returns immediately.
	fatal := errors.New("fatal")
	calls = 0
	err = Do(context.Background(), RetryConfig{
		MaxAttempts: 5, BackoffBase: time.Millisecond, Seed: 1,
		Retryable: func(err error) bool { return !errors.Is(err, fatal) },
	}, func(ctx context.Context) error { calls++; return fatal })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("Do fatal = %v after %d calls, want 1 call", err, calls)
	}

	// Exhausted attempts wrap the last error with the attempt count.
	calls = 0
	err = Do(context.Background(), RetryConfig{MaxAttempts: 3, BackoffBase: time.Millisecond, Seed: 1},
		func(ctx context.Context) error { calls++; return errors.New("always") })
	if err == nil || calls != 3 {
		t.Fatalf("Do exhausted = %v after %d calls", err, calls)
	}
}

func TestDoPerAttemptDeadline(t *testing.T) {
	var deadlines []time.Time
	err := Do(context.Background(), RetryConfig{
		MaxAttempts: 2, BackoffBase: time.Millisecond, Seed: 1,
		PerAttemptTimeout: 50 * time.Millisecond,
	}, func(ctx context.Context) error {
		d, ok := ctx.Deadline()
		if !ok {
			t.Fatal("attempt context has no deadline")
		}
		deadlines = append(deadlines, d)
		if len(deadlines) < 2 {
			return errors.New("force retry")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each attempt gets a fresh deadline, not the first attempt's leftover.
	if !deadlines[1].After(deadlines[0]) {
		t.Errorf("second attempt deadline %v not after first %v", deadlines[1], deadlines[0])
	}

	// Parent cancellation wins over retries.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Do(ctx, RetryConfig{MaxAttempts: 3, Seed: 1}, func(ctx context.Context) error {
		return errors.New("x")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Do on canceled parent = %v", err)
	}
}
