package resilience

import (
	"context"
	"fmt"
	"time"
)

// RetryConfig drives Do.
type RetryConfig struct {
	// MaxAttempts bounds total tries (first call included); ≤ 0 means 3.
	MaxAttempts int
	// BackoffBase/BackoffCap parameterize the decorrelated-jitter delays
	// between attempts (see NewBackoff for defaults).
	BackoffBase, BackoffCap time.Duration
	// Seed makes the jitter deterministic.
	Seed int64
	// PerAttemptTimeout, when positive, derives a child context with
	// that deadline for each attempt, so one hung attempt cannot eat the
	// whole budget: the next attempt gets a fresh deadline (still capped
	// by the parent context's).
	PerAttemptTimeout time.Duration
	// Retryable classifies errors; nil retries everything non-nil.
	Retryable func(error) bool
}

// Do runs fn until it succeeds, the attempts are exhausted, the error is
// classified non-retryable, or ctx is done. The returned error is the
// last attempt's, wrapped with the attempt count when retries happened.
func Do(ctx context.Context, cfg RetryConfig, fn func(ctx context.Context) error) error {
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	bo := NewBackoff(cfg.BackoffBase, cfg.BackoffCap, cfg.Seed)
	var err error
	for a := 1; ; a++ {
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if cfg.PerAttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, cfg.PerAttemptTimeout)
		}
		err = fn(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if cfg.Retryable != nil && !cfg.Retryable(err) {
			return err
		}
		if a >= attempts {
			if a > 1 {
				return fmt.Errorf("resilience: %d attempts: %w", a, err)
			}
			return err
		}
		if serr := Sleep(ctx, bo.Next()); serr != nil {
			return serr
		}
	}
}
