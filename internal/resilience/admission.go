package resilience

import (
	"context"
	"math"
	"sync"
	"time"
)

// TokenBucket is a classic rate limiter: tokens refill continuously at
// rate per second up to burst, and each admitted request spends one.
// When empty it reports how long until the next token so callers can
// emit an honest Retry-After. Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens/second
// with capacity burst (burst < 1 is raised to 1). rate ≤ 0 means the
// bucket never refills: the first burst requests pass, the rest shed —
// useful in tests, degenerate in production.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	tb := &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
	tb.last = tb.now()
	return tb
}

// SetClock replaces the bucket's time source (tests only). It also
// resets the refill anchor so the next Allow accrues from now.
func (tb *TokenBucket) SetClock(now func() time.Time) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.now = now
	tb.last = now()
}

// refill accrues tokens since the last call. Caller holds tb.mu.
func (tb *TokenBucket) refill() {
	now := tb.now()
	if tb.rate > 0 {
		tb.tokens = math.Min(tb.burst, tb.tokens+tb.rate*now.Sub(tb.last).Seconds())
	}
	tb.last = now
}

// Allow spends n tokens if available and reports whether it did.
func (tb *TokenBucket) Allow(n int) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill()
	if tb.tokens < float64(n) {
		return false
	}
	tb.tokens -= float64(n)
	return true
}

// RetryAfter estimates how long until one token is available; 0 means a
// token is ready now, a negative rate yields a large constant (the
// bucket never refills).
func (tb *TokenBucket) RetryAfter() time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill()
	if tb.tokens >= 1 {
		return 0
	}
	if tb.rate <= 0 {
		return time.Hour
	}
	return time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
}

// Inflight is a counting semaphore bounding concurrent work, the second
// half of the server's admission controller: the token bucket shapes
// sustained rate, Inflight caps instantaneous concurrency. The zero
// value is unusable; use NewInflight.
type Inflight struct {
	slots chan struct{}
}

// NewInflight returns a semaphore admitting at most max concurrent
// holders (max < 1 is raised to 1).
func NewInflight(max int) *Inflight {
	if max < 1 {
		max = 1
	}
	return &Inflight{slots: make(chan struct{}, max)}
}

// TryAcquire claims a slot without blocking and reports success. Every
// successful acquire must be paired with Release.
func (f *Inflight) TryAcquire() bool {
	select {
	case f.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire claims a slot, blocking until one frees or ctx is done.
func (f *Inflight) Acquire(ctx context.Context) error {
	select {
	case f.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case f.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot claimed by TryAcquire or Acquire.
func (f *Inflight) Release() { <-f.slots }

// InUse reports the currently held slots.
func (f *Inflight) InUse() int { return len(f.slots) }

// Cap reports the semaphore's capacity.
func (f *Inflight) Cap() int { return cap(f.slots) }
