package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALSegment throws arbitrary bytes at segment recovery (the
// durability analogue of wire.FuzzDecodeFrame): Open must either repair to
// a replayable prefix or fail with a typed error — never panic, never
// deliver a record whose framing did not validate.
func FuzzWALSegment(f *testing.F) {
	// Seed with a genuine segment, the same with a flipped byte, and a few
	// degenerate shapes.
	seedDir := f.TempDir()
	l, err := Open(seedDir, Options{NoTick: true, Policy: SyncBatch})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append(byte(i), []byte("seed payload bytes"))
	}
	l.Commit()
	l.Close()
	segs, _ := listSegments(seedDir)
	if len(segs) == 1 {
		if data, err := os.ReadFile(segs[0].path); err == nil {
			f.Add(data)
			flipped := append([]byte(nil), data...)
			flipped[len(flipped)/2] ^= 0x55
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("MQWL"))
	f.Add(append(segmentHeader(1), 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{NoTick: true})
		if err != nil {
			return // typed failure is acceptable; panics are not
		}
		prev := uint64(0)
		_ = l.Replay(0, func(r Record) error {
			if r.LSN != prev+1 && prev != 0 {
				t.Fatalf("non-contiguous LSN %d after %d", r.LSN, prev)
			}
			prev = r.LSN
			return nil
		})
		// The repaired log must accept appends and stay replayable.
		if _, err := l.Append(1, []byte("post-repair")); err == nil {
			if err := l.Commit(); err != nil {
				t.Fatalf("commit after repair: %v", err)
			}
		}
		l.Close()
		if _, err := Open(dir, Options{NoTick: true}); err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
	})
}
