package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot files: snap-%016x.snap, named by the LSN they cover. Layout is
// magic "MQSN" (4) + version (1) + covered LSN (8) + payload length (4) +
// CRC-32C of the payload (4) + payload. Writes are atomic (temp file +
// fsync + rename + directory fsync) so a crash mid-snapshot leaves the
// previous snapshot intact; loads fall back to the next-older file when
// the newest is damaged.
const (
	snapMagic     = "MQSN"
	snapVersion   = 1
	snapHeaderLen = 4 + 1 + 8 + 4 + 4
	// snapKeep is how many valid snapshots retention preserves.
	snapKeep = 2
)

// WriteSnapshot atomically persists payload as the snapshot covering lsn
// and prunes all but the newest snapKeep snapshot files. It returns the
// final file path.
func WriteSnapshot(dir string, lsn uint64, payload []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	hdr := make([]byte, snapHeaderLen)
	copy(hdr, snapMagic)
	hdr[4] = snapVersion
	binary.LittleEndian.PutUint64(hdr[5:], lsn)
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[17:], crc32.Checksum(payload, crcTable))
	if _, err := tmp.Write(hdr); err != nil {
		cleanup()
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		cleanup()
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	pruneSnapshots(dir, snapKeep)
	return final, nil
}

// LoadLatestSnapshot returns the newest valid snapshot's covered LSN and
// payload. Damaged files are skipped in favor of older ones; ErrNoSnapshot
// reports that none are usable.
func LoadLatestSnapshot(dir string) (lsn uint64, payload []byte, err error) {
	files, err := listSnapshots(dir)
	if err != nil {
		return 0, nil, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		lsn, payload, err := readSnapshot(files[i].path)
		if err == nil {
			return lsn, payload, nil
		}
	}
	return 0, nil, ErrNoSnapshot
}

// OldestSnapshotLSN reports the LSN of the oldest snapshot file still in
// dir. WAL retention must keep every record after that point: if the
// newest snapshot turns out damaged, recovery falls back to an older
// generation and replays the log from its LSN onward.
func OldestSnapshotLSN(dir string) (uint64, bool) {
	files, err := listSnapshots(dir)
	if err != nil || len(files) == 0 {
		return 0, false
	}
	return files[0].lsn, true
}

type snapFile struct {
	lsn  uint64
	path string
}

func listSnapshots(dir string) ([]snapFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	var files []snapFile
	for _, e := range ents {
		var lsn uint64
		if _, err := fmt.Sscanf(e.Name(), "snap-%016x.snap", &lsn); err != nil || !e.Type().IsRegular() {
			continue
		}
		files = append(files, snapFile{lsn: lsn, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].lsn < files[j].lsn })
	return files, nil
}

func readSnapshot(path string) (lsn uint64, payload []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, snapHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, nil, fmt.Errorf("%w: snapshot %s: short header", ErrCorrupt, filepath.Base(path))
	}
	if string(hdr[:4]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: snapshot %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	if hdr[4] != snapVersion {
		return 0, nil, fmt.Errorf("%w: snapshot %s: unsupported version %d", ErrCorrupt, filepath.Base(path), hdr[4])
	}
	lsn = binary.LittleEndian.Uint64(hdr[5:])
	size := binary.LittleEndian.Uint32(hdr[13:])
	if size > maxRecordSize {
		return 0, nil, fmt.Errorf("%w: snapshot %s: absurd payload size %d", ErrCorrupt, filepath.Base(path), size)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(f, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: snapshot %s: truncated payload", ErrCorrupt, filepath.Base(path))
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[17:]) {
		return 0, nil, fmt.Errorf("%w: snapshot %s: payload CRC mismatch", ErrCorrupt, filepath.Base(path))
	}
	return lsn, payload, nil
}

// pruneSnapshots removes all but the newest keep snapshot files. Best
// effort: removal failures leave extra files behind, never break writes.
func pruneSnapshots(dir string, keep int) {
	files, err := listSnapshots(dir)
	if err != nil || len(files) <= keep {
		return
	}
	for _, f := range files[:len(files)-keep] {
		os.Remove(f.path)
	}
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return nil
}
