// Package wal is the durability substrate of the serving layer: a
// segmented, CRC-framed write-ahead log plus point-in-time snapshot files.
// The server appends one record per state-changing operation (ingest
// batches, subscribes, flushes, quarantines) and periodically persists a
// snapshot of its full state stamped with the log sequence number (LSN) it
// covers; recovery loads the newest valid snapshot and replays the WAL
// suffix after it.
//
// On-disk layout (little-endian throughout), one directory per server:
//
//	wal-%016x.log    log segments, named by the LSN of their first record
//	snap-%016x.snap  snapshots, named by the LSN they cover
//
// Segment layout: a 13-byte header (magic "MQWL", version byte, first-LSN
// uint64) followed by records:
//
//	offset 0  length  4 bytes  uint32 len(kind+payload)
//	offset 4  crc     4 bytes  CRC-32C (Castagnoli) over kind+payload
//	offset 8  kind    1 byte   caller-defined record kind
//	offset 9  payload length-1 bytes
//
// LSNs are implicit: a segment's i-th record has LSN firstLSN+i, so the
// log needs no index. A torn tail — the partially written record a crash
// leaves behind — is detected on Open by the first length/CRC violation in
// the *last* segment and truncated back to the last valid record; the same
// violation in any earlier segment is real corruption and surfaces as a
// typed ErrCorrupt instead.
//
// Write path: appends go through one buffered writer; Commit flushes it to
// the OS (so a SIGKILL loses at most the records of the in-flight batch)
// and fsyncs per the configured SyncPolicy. A background tick bounds
// staleness for callers that never Commit and drives SyncInterval. All IO
// errors are sticky: once an append, flush or fsync fails the Log refuses
// further appends with the original error, which the server surfaces as
// degraded read-only mode.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SyncPolicy picks when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncOff never fsyncs: records are flushed to the OS at batch
	// boundaries (surviving a process kill) but a power loss can drop the
	// unsynced suffix. Clients re-drive lost batches via idempotency keys.
	SyncOff SyncPolicy = iota
	// SyncInterval fsyncs on the background tick (Options.Interval).
	SyncInterval
	// SyncBatch fsyncs on every Commit — one fsync per ingest batch.
	SyncBatch
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncOff:
		return "off"
	case SyncInterval:
		return "interval"
	case SyncBatch:
		return "batch"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy reads a policy name ("off", "interval", "batch").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "interval":
		return SyncInterval, nil
	case "batch", "":
		return SyncBatch, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want off, interval or batch)", s)
}

// Typed errors. Every malformed input maps onto one of these bases
// (wrapped with detail), never a panic.
var (
	// ErrCorrupt reports an invalid record in a sealed (non-last) segment
	// or a malformed segment chain — damage truncation cannot repair.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed reports an append to a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrNoSnapshot reports that no valid snapshot exists in the directory.
	ErrNoSnapshot = errors.New("wal: no snapshot")
)

// Segment geometry.
const (
	segMagic      = "MQWL"
	segVersion    = 1
	segHeaderLen  = 4 + 1 + 8
	recHeaderLen  = 8
	firstLSN      = 1        // LSN of the first record ever appended
	maxRecordSize = 64 << 20 // bounds one record's kind+payload bytes

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 64 << 20
	// DefaultInterval is the background flush/fsync tick when Options
	// leaves Interval zero.
	DefaultInterval = 100 * time.Millisecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed log entry.
type Record struct {
	LSN  uint64
	Kind byte
	Data []byte // valid only for the duration of the replay callback
}

// Options configure Open.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// Policy picks the fsync cadence. The zero value is SyncOff; servers
	// that want durability must set it explicitly.
	Policy SyncPolicy
	// Interval is the background flush tick; it fsyncs too under
	// SyncInterval (default DefaultInterval).
	Interval time.Duration
	// Failpoint, when non-nil, is consulted before every physical append
	// ("wal.append") and fsync ("wal.sync"); a returned error is treated
	// as the corresponding IO failure. Chaos-test hook.
	Failpoint func(op string) error
	// NoTick disables the background goroutine (tests drive Commit/Sync
	// explicitly).
	NoTick bool
}

type segInfo struct {
	first uint64 // LSN of the segment's first record
	path  string
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	w        *bufWriter
	segs     []segInfo // ascending by first; last entry is the open segment
	segBytes int64     // bytes written to the open segment (header included)
	next     uint64    // next LSN to assign
	err      error     // sticky IO error; non-nil refuses appends
	closed   bool

	repairedBytes int64 // torn-tail bytes truncated by Open

	stopTick chan struct{}
	doneTick chan struct{}
}

// bufWriter is a minimal buffered writer (bufio.Writer semantics) that
// also tracks whether unflushed bytes exist, so ticks skip clean flushes.
type bufWriter struct {
	f   *os.File
	buf []byte
}

func (b *bufWriter) Write(p []byte) {
	b.buf = append(b.buf, p...)
}

func (b *bufWriter) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	if _, err := b.f.Write(b.buf); err != nil {
		return err
	}
	b.buf = b.buf[:0]
	if cap(b.buf) > 1<<20 {
		b.buf = nil
	}
	return nil
}

// Open opens (or creates) the log in dir, repairing a torn tail: the last
// segment is truncated back to its last valid record, while the same
// damage in an earlier segment returns ErrCorrupt. The returned log is
// positioned to append the next record.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.Interval <= 0 {
		opt.Interval = DefaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, next: firstLSN}
	// Validate the chain: every sealed segment must be fully valid and its
	// record count must reach the next segment's first LSN.
	for i, seg := range segs {
		last := i == len(segs)-1
		n, goodBytes, scanErr := scanSegmentFile(seg.path, seg.first, nil)
		if scanErr != nil && !last {
			return nil, fmt.Errorf("%w: segment %s: %v", ErrCorrupt, filepath.Base(seg.path), scanErr)
		}
		if !last && seg.first+uint64(n) != segs[i+1].first {
			return nil, fmt.Errorf("%w: segment %s holds %d records but next segment starts at LSN %d",
				ErrCorrupt, filepath.Base(seg.path), n, segs[i+1].first)
		}
		if last {
			if scanErr != nil {
				// Torn tail: drop everything after the last valid record.
				st, statErr := os.Stat(seg.path)
				if statErr == nil {
					l.repairedBytes = st.Size() - goodBytes
				}
				if err := os.Truncate(seg.path, goodBytes); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(seg.path), err)
				}
			}
			l.next = seg.first + uint64(n)
			l.segBytes = goodBytes
		}
	}
	l.segs = segs
	if len(segs) == 0 {
		if err := l.newSegmentLocked(firstLSN); err != nil {
			return nil, err
		}
	} else {
		cur := segs[len(segs)-1]
		f, err := os.OpenFile(cur.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if l.segBytes < segHeaderLen {
			// The torn tail ate into the header (or the file was empty):
			// rewrite it so the segment is self-describing again.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
			if _, err := f.Write(segmentHeader(cur.first)); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.segBytes = segHeaderLen
			l.next = cur.first
		}
		l.f = f
		l.w = &bufWriter{f: f}
	}
	if !opt.NoTick {
		l.stopTick = make(chan struct{})
		l.doneTick = make(chan struct{})
		go l.tick()
	}
	return l, nil
}

// segmentHeader renders the 13-byte segment header.
func segmentHeader(first uint64) []byte {
	h := make([]byte, segHeaderLen)
	copy(h, segMagic)
	h[4] = segVersion
	binary.LittleEndian.PutUint64(h[5:], first)
	return h
}

// newSegmentLocked creates and opens a fresh segment starting at first.
func (l *Log) newSegmentLocked(first uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%016x.log", first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segmentHeader(first)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = &bufWriter{f: f}
	l.segs = append(l.segs, segInfo{first: first, path: path})
	l.segBytes = segHeaderLen
	return nil
}

// Append writes one record and returns its LSN. The record is buffered;
// call Commit at a batch boundary to make it kill-safe (and durable per
// the sync policy). Errors are sticky: after the first failure every
// Append returns it until the log is reopened.
func (l *Log) Append(kind byte, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if len(payload)+1 > maxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds %d", len(payload)+1, maxRecordSize)
	}
	if fp := l.opt.Failpoint; fp != nil {
		if err := fp("wal.append"); err != nil {
			l.err = fmt.Errorf("wal: append: %w", err)
			return 0, l.err
		}
	}
	if l.segBytes >= l.opt.SegmentBytes && l.segBytes > segHeaderLen {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return 0, err
		}
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)+1))
	crc := crc32.Update(crc32.Checksum([]byte{kind}, crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	l.w.Write(hdr[:])
	l.w.Write([]byte{kind})
	l.w.Write(payload)
	l.segBytes += int64(recHeaderLen + 1 + len(payload))
	lsn := l.next
	l.next++
	return lsn, nil
}

// rotateLocked seals the open segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	return l.newSegmentLocked(l.next)
}

// Rotate seals the open segment (if it holds any records) so a following
// Prune can reclaim it once a snapshot covers it.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.segBytes <= segHeaderLen {
		return nil
	}
	if err := l.rotateLocked(); err != nil {
		l.err = err
		return err
	}
	return nil
}

func (l *Log) flushLocked() error {
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("wal: flush: %w", err)
		return l.err
	}
	return nil
}

// Commit makes every appended record kill-safe (flushed to the OS) and,
// under SyncBatch, durable (fsynced). Call it at batch boundaries.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.opt.Policy == SyncBatch {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes and fsyncs unconditionally, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if fp := l.opt.Failpoint; fp != nil {
		if err := fp("wal.sync"); err != nil {
			l.err = fmt.Errorf("wal: sync: %w", err)
			return l.err
		}
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync: %w", err)
		return l.err
	}
	return nil
}

// tick is the background flush loop: it bounds how long records linger in
// the user-space buffer and drives the SyncInterval policy.
func (l *Log) tick() {
	defer close(l.doneTick)
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopTick:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil {
				if err := l.flushLocked(); err == nil && l.opt.Policy == SyncInterval {
					_ = l.syncLocked()
				}
			}
			l.mu.Unlock()
		}
	}
}

// NextLSN reports the LSN the next Append will be assigned. NextLSN()-1 is
// the LSN a snapshot taken now covers.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Err reports the sticky IO error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// RepairedBytes reports how many torn-tail bytes Open truncated.
func (l *Log) RepairedBytes() int64 { return l.repairedBytes }

// Close flushes, fsyncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stopTick
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.doneTick
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	if l.err == nil {
		if err := l.w.Flush(); err != nil {
			firstErr = err
		} else if err := l.f.Sync(); err != nil {
			firstErr = err
		}
	}
	if err := l.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Replay streams every record with LSN ≥ from through fn, in LSN order.
// The record's Data slice is only valid inside the callback. A torn tail
// in the last segment ends the replay cleanly (Open already truncates it;
// Replay tolerates it again for read-only callers); corruption anywhere
// else returns ErrCorrupt, as does a pruned log whose oldest surviving
// record is newer than from (the suffix would have a silent hole). fn
// errors abort the replay and are returned as-is, torn tail or not.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	segs := make([]segInfo, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()
	return replaySegments(segs, from, fn)
}

// ReplayDir replays a log directory without opening it for appends —
// read-only recovery inspection. Same contract as Log.Replay.
func ReplayDir(dir string, from uint64, fn func(Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	return replaySegments(segs, from, fn)
}

// callbackError tags an error returned by the caller's replay callback,
// so replaySegments can tell "fn rejected a record" apart from "the
// segment frame is damaged" — only the latter is a tolerable torn tail.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

func replaySegments(segs []segInfo, from uint64, fn func(Record) error) error {
	if from < firstLSN {
		from = firstLSN
	}
	// Gap detection: replaying a suffix whose first records were pruned
	// away would silently skip history; refuse instead. (A from past the
	// end of the log is fine — there is simply nothing to replay yet.)
	if len(segs) > 0 && segs[0].first > from {
		return fmt.Errorf("%w: replay from LSN %d but the oldest segment starts at LSN %d",
			ErrCorrupt, from, segs[0].first)
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		// Skip segments that end before the requested suffix.
		if !last && segs[i+1].first <= from {
			continue
		}
		_, _, err := scanSegmentFile(seg.path, seg.first, func(lsn uint64, kind byte, data []byte) error {
			if lsn < from {
				return nil
			}
			return fn(Record{LSN: lsn, Kind: kind, Data: data})
		})
		if err != nil {
			var cb *callbackError
			if errors.As(err, &cb) {
				// fn aborted the replay: a real failure regardless of which
				// segment it landed in, never a repairable torn tail.
				return cb.err
			}
			if last {
				return nil // torn tail: the valid prefix was replayed
			}
			return fmt.Errorf("%w: segment %s: %v", ErrCorrupt, filepath.Base(seg.path), err)
		}
	}
	return nil
}

// Prune removes sealed segments every record of which has LSN ≤ upTo —
// the retention step after a snapshot at upTo. The open segment is never
// removed.
func (l *Log) Prune(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for i, seg := range l.segs {
		if i < len(l.segs)-1 && l.segs[i+1].first-1 <= upTo {
			if err := os.Remove(seg.path); err != nil {
				// Retention is best effort; keep the bookkeeping coherent.
				kept = append(kept, seg)
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return nil
}

// Segments reports the current segment file count (retention visibility).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// listSegments finds and orders the wal-*.log files of dir.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		var first uint64
		if _, err := fmt.Sscanf(name, "wal-%016x.log", &first); err != nil || !e.Type().IsRegular() {
			continue
		}
		segs = append(segs, segInfo{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	for i := 1; i < len(segs); i++ {
		if segs[i].first <= segs[i-1].first {
			return nil, fmt.Errorf("%w: duplicate segment start LSN %d", ErrCorrupt, segs[i].first)
		}
	}
	return segs, nil
}

// scanSegmentFile walks one segment's records, calling fn (when non-nil)
// per record. It returns the record count and the byte offset just past
// the last valid record. A framing violation (short header, absurd length,
// CRC mismatch, truncated payload) is returned as a non-nil error with the
// valid prefix already delivered — the caller decides between truncating
// (last segment) and failing (sealed segment). An error from fn is wrapped
// in callbackError so callers can tell it apart from frame damage.
func scanSegmentFile(path string, wantFirst uint64, fn func(lsn uint64, kind byte, data []byte) error) (n int, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("short segment header: %w", err)
	}
	if string(hdr[:4]) != segMagic {
		return 0, 0, fmt.Errorf("bad segment magic %q", hdr[:4])
	}
	if hdr[4] != segVersion {
		return 0, 0, fmt.Errorf("unsupported segment version %d", hdr[4])
	}
	if first := binary.LittleEndian.Uint64(hdr[5:]); first != wantFirst {
		return 0, 0, fmt.Errorf("segment header LSN %d does not match filename LSN %d", first, wantFirst)
	}
	goodBytes = segHeaderLen
	var rechdr [recHeaderLen]byte
	var buf []byte
	lsn := wantFirst
	for {
		if _, err := io.ReadFull(f, rechdr[:]); err != nil {
			if err == io.EOF {
				return n, goodBytes, nil // clean end
			}
			return n, goodBytes, fmt.Errorf("torn record header at offset %d", goodBytes)
		}
		size := binary.LittleEndian.Uint32(rechdr[0:])
		if size == 0 || size > maxRecordSize {
			return n, goodBytes, fmt.Errorf("absurd record size %d at offset %d", size, goodBytes)
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		if _, err := io.ReadFull(f, buf); err != nil {
			return n, goodBytes, fmt.Errorf("torn record payload at offset %d", goodBytes)
		}
		if crc := crc32.Checksum(buf, crcTable); crc != binary.LittleEndian.Uint32(rechdr[4:]) {
			return n, goodBytes, fmt.Errorf("record CRC mismatch at offset %d", goodBytes)
		}
		if fn != nil {
			if err := fn(lsn, buf[0], buf[1:]); err != nil {
				return n, goodBytes, &callbackError{err}
			}
		}
		lsn++
		n++
		goodBytes += int64(recHeaderLen) + int64(size)
	}
}
