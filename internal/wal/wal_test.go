package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	opt.NoTick = true
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int, kind byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(kind, []byte(fmt.Sprintf("record-%d-%d", kind, i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	err := l.Replay(from, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Kind: r.Kind, Data: append([]byte(nil), r.Data...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: SyncBatch})
	appendN(t, l, 25, 7)
	recs := collect(t, l, 0)
	if len(recs) != 25 {
		t.Fatalf("replayed %d records, want 25", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i)+firstLSN {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
		if want := fmt.Sprintf("record-7-%d", i); string(r.Data) != want || r.Kind != 7 {
			t.Fatalf("record %d = kind %d %q, want kind 7 %q", i, r.Kind, r.Data, want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: LSN accounting resumes and appends extend the same stream.
	l = openT(t, dir, Options{Policy: SyncBatch})
	if got := l.NextLSN(); got != 26 {
		t.Fatalf("NextLSN after reopen = %d, want 26", got)
	}
	appendN(t, l, 5, 9)
	if recs := collect(t, l, 26); len(recs) != 5 || recs[0].Kind != 9 {
		t.Fatalf("suffix replay got %d records, first kind %v", len(recs), recs[0].Kind)
	}
	l.Close()
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: SyncOff, SegmentBytes: 256})
	appendN(t, l, 100, 1)
	if n := l.Segments(); n < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", n)
	}
	recs := collect(t, l, 0)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records across segments, want 100", len(recs))
	}

	// Pruning everything below the last record keeps only segments that
	// hold it (plus the open one), and replay of the suffix still works.
	upTo := recs[59].LSN
	if err := l.Prune(upTo); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	tail := collect(t, l, recs[60].LSN)
	if len(tail) != 40 {
		t.Fatalf("post-prune suffix replay got %d records, want 40", len(tail))
	}
	l.Close()

	// Reopen validates the pruned chain.
	l = openT(t, dir, Options{Policy: SyncOff, SegmentBytes: 256})
	if got := l.NextLSN(); got != 101 {
		t.Fatalf("NextLSN after pruned reopen = %d, want 101", got)
	}
	l.Close()
}

func TestRotateSealsCurrentSegment(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: SyncOff})
	appendN(t, l, 3, 1)
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Prune(l.NextLSN() - 1); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if n := l.Segments(); n != 1 {
		t.Fatalf("segments after rotate+prune = %d, want 1", n)
	}
	appendN(t, l, 2, 2)
	if recs := collect(t, l, 4); len(recs) != 2 || recs[0].LSN != 4 {
		t.Fatalf("post-prune replay = %+v, want 2 records from LSN 4", recs)
	}
	// Replaying from before the pruned point would skip history silently;
	// gap detection refuses it with the typed corruption error instead.
	if err := l.Replay(1, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay across pruned gap = %v, want ErrCorrupt", err)
	}
	l.Close()
}

// TestReplayCallbackErrorPropagates: an error returned by the replay
// callback must abort the replay and surface — even from the last
// segment, where framing damage (torn tail) is tolerated. Swallowing it
// would let recovery report success over a partially applied log.
func TestReplayCallbackErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: SyncBatch})
	appendN(t, l, 5, 1)
	boom := errors.New("apply failed")
	seen := 0
	err := l.Replay(0, func(r Record) error {
		seen++
		if r.LSN == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Replay with failing callback = %v, want the callback error", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("callback error must not be classified as corruption: %v", err)
	}
	if seen != 3 {
		t.Fatalf("callback ran %d times, want 3 (abort at the failing record)", seen)
	}
	l.Close()
}

// TestTornTailEveryOffset is the satellite property test: record a WAL,
// truncate it at every byte offset, and assert recovery always yields a
// valid prefix — no panic, no partial record, monotone LSNs from 1.
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l := openT(t, master, Options{Policy: SyncBatch})
	for i := 0; i < 12; i++ {
		if _, err := l.Append(byte(i%3), bytes.Repeat([]byte{byte(i)}, 5+i*3)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly 1 master segment, got %d (err %v)", len(segs), err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		name := filepath.Base(segs[0].path)
		if err := os.WriteFile(filepath.Join(dir, name), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Policy: SyncOff, NoTick: true})
		if err != nil {
			t.Fatalf("cut %d: Open failed: %v", cut, err)
		}
		var lsns []uint64
		var sizes []int
		err = l.Replay(0, func(r Record) error {
			lsns = append(lsns, r.LSN)
			sizes = append(sizes, len(r.Data))
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: Replay failed: %v", cut, err)
		}
		for i, lsn := range lsns {
			if lsn != uint64(i)+firstLSN {
				t.Fatalf("cut %d: non-contiguous LSN %d at index %d", cut, lsn, i)
			}
			if want := 5 + i*3; sizes[i] != want {
				t.Fatalf("cut %d: record %d has %d bytes, want %d (partial apply)", cut, i, sizes[i], want)
			}
		}
		// Appends after repair must produce a log that replays cleanly.
		if _, err := l.Append(99, []byte("after-repair")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("cut %d: commit after repair: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut %d: close after repair: %v", cut, err)
		}
		l2, err := Open(dir, Options{NoTick: true})
		if err != nil {
			t.Fatalf("cut %d: reopen after repair: %v", cut, err)
		}
		n := 0
		last := Record{}
		if err := l2.Replay(0, func(r Record) error {
			n++
			last = Record{LSN: r.LSN, Kind: r.Kind, Data: append([]byte(nil), r.Data...)}
			return nil
		}); err != nil {
			t.Fatalf("cut %d: replay after repair: %v", cut, err)
		}
		if n != len(lsns)+1 || last.Kind != 99 || string(last.Data) != "after-repair" {
			t.Fatalf("cut %d: replay after repair saw %d records, last %+v", cut, n, last)
		}
		l2.Close()
	}
}

// Corruption in a sealed (non-last) segment is unrecoverable and must
// surface as the typed ErrCorrupt, not be silently truncated.
func TestCorruptSealedSegmentTyped(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Policy: SyncOff, SegmentBytes: 128})
	appendN(t, l, 40, 1)
	l.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %d (err %v)", len(segs), err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload byte in the sealed segment
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoTick: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestFailpointStickyError(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk gone")
	fail := false
	l := openT(t, dir, Options{Policy: SyncBatch, Failpoint: func(op string) error {
		if fail && op == "wal.sync" {
			return boom
		}
		return nil
	}})
	appendN(t, l, 2, 1)
	fail = true
	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatalf("Append should buffer fine: %v", err)
	}
	if err := l.Commit(); !errors.Is(err, boom) {
		t.Fatalf("Commit = %v, want injected error", err)
	}
	// Sticky: later appends refuse with the original failure.
	if _, err := l.Append(1, []byte("y")); !errors.Is(err, boom) {
		t.Fatalf("Append after failure = %v, want sticky injected error", err)
	}
	if err := l.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want injected error", err)
	}
	l.Close()
}

func TestSnapshotRoundTripAndRetention(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadLatestSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir load = %v, want ErrNoSnapshot", err)
	}
	for i := 1; i <= 4; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 100*i)
		if _, err := WriteSnapshot(dir, uint64(i*10), payload); err != nil {
			t.Fatalf("WriteSnapshot %d: %v", i, err)
		}
	}
	lsn, payload, err := LoadLatestSnapshot(dir)
	if err != nil {
		t.Fatalf("LoadLatestSnapshot: %v", err)
	}
	if lsn != 40 || !bytes.Equal(payload, bytes.Repeat([]byte{4}, 400)) {
		t.Fatalf("latest snapshot = lsn %d, %d bytes", lsn, len(payload))
	}
	files, _ := listSnapshots(dir)
	if len(files) != snapKeep {
		t.Fatalf("retention kept %d snapshots, want %d", len(files), snapKeep)
	}

	// Damage the newest: load falls back to the older valid one.
	data, err := os.ReadFile(files[len(files)-1].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(files[len(files)-1].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lsn, payload, err = LoadLatestSnapshot(dir)
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if lsn != 30 || len(payload) != 300 {
		t.Fatalf("fallback snapshot = lsn %d, %d bytes; want lsn 30, 300 bytes", lsn, len(payload))
	}
}

func TestSnapshotTruncatedEveryOffset(t *testing.T) {
	master := t.TempDir()
	payload := []byte("the quick brown fox jumps over the lazy dog, twice over")
	path, err := WriteSnapshot(master, 77, payload)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(path)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadLatestSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("cut %d: load = %v, want ErrNoSnapshot (skip damaged)", cut, err)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"off", SyncOff, true}, {"interval", SyncInterval, true},
		{"batch", SyncBatch, true}, {"", SyncBatch, true}, {"bogus", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}
