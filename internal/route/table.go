// Package route implements the shared subscription-routing layer: a
// server-side symbol table that interns topic keywords and post tokens to
// dense uint32 symbol IDs, and a copy-on-write inverted index from keyword
// symbol to the sorted posting list of subscriptions carrying it.
//
// Together they invert the ingest fan-out of the paper's §7.4 scenario
// ("executed for millions of users"): instead of feeding every post to
// every subscription — O(|subs|) matcher invocations per post — ingest
// tokenizes once, maps the tokens to symbols, and k-way-merges the
// candidate posting lists, feeding only the subscriptions that can
// possibly match. The per-subscription matcher stays the ground truth, so
// routing is a pure superset filter: a post reaches every subscription
// with at least one of its keywords present, and skipped subscriptions
// would have matched nothing.
//
// Both structures follow the index read-path shape: writers (Subscribe,
// Unsubscribe, quarantine) mutate under a mutex and publish immutable
// snapshots through an atomic.Pointer; the ingest hot path reads with zero
// locks — one atomic load plus map lookups over data that never mutates
// after publication.
package route

import (
	"sync"
	"sync/atomic"
)

// Table interns strings to dense uint32 symbols. Lookups are lock-free
// (one atomic load plus one map read of an immutable snapshot); interning
// takes a mutex and republishes, cloning the map only when a batch
// actually adds new symbols — after the keyword vocabulary saturates,
// Intern calls on known words are read-mostly and clone nothing.
type Table struct {
	mu   sync.Mutex
	snap atomic.Pointer[map[string]uint32]
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	t := &Table{}
	m := make(map[string]uint32)
	t.snap.Store(&m)
	return t
}

// Len reports the number of interned symbols.
func (t *Table) Len() int { return len(*t.snap.Load()) }

// Lookup resolves an already-interned string lock-free. A miss means the
// string is no subscription's keyword and can be skipped entirely.
func (t *Table) Lookup(word string) (uint32, bool) {
	sym, ok := (*t.snap.Load())[word]
	return sym, ok
}

// AppendSyms appends the symbols of every word present in the table to dst
// and returns the extended slice, reusing dst's capacity. Unknown words
// are skipped — they can match no keyword anywhere. Lock-free; duplicates
// in words yield duplicate symbols (see DedupSyms).
func (t *Table) AppendSyms(dst []uint32, words []string) []uint32 {
	m := *t.snap.Load()
	for _, w := range words {
		if sym, ok := m[w]; ok {
			dst = append(dst, sym)
		}
	}
	return dst
}

// Intern returns the symbol for word, assigning the next dense ID when it
// is new. Symbols are never recycled: the table only grows.
func (t *Table) Intern(word string) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.snap.Load()
	if sym, ok := old[word]; ok {
		return sym
	}
	next := make(map[string]uint32, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	sym := uint32(len(old))
	next[word] = sym
	t.snap.Store(&next)
	return sym
}

// InternAll appends the symbol of every word to dst (assigning new IDs in
// word order) and returns the extended slice. The snapshot is cloned at
// most once per call regardless of how many words are new, so batch
// interning a subscription's keyword set costs one republish.
func (t *Table) InternAll(dst []uint32, words []string) []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.snap.Load()
	var next map[string]uint32
	m := old
	for _, w := range words {
		if sym, ok := m[w]; ok {
			dst = append(dst, sym)
			continue
		}
		if next == nil {
			next = make(map[string]uint32, len(old)+len(words))
			for k, v := range old {
				next[k] = v
			}
			m = next
		}
		sym := uint32(len(m))
		next[w] = sym
		dst = append(dst, sym)
	}
	if next != nil {
		t.snap.Store(&next)
	}
	return dst
}

// DedupSyms sorts syms ascending and removes duplicates in place. Symbol
// slices are post-sized (tens of entries), so an allocation-free insertion
// sort beats sort.Slice and keeps the ingest hot path zero-alloc.
func DedupSyms(syms []uint32) []uint32 {
	for i := 1; i < len(syms); i++ {
		for j := i; j > 0 && syms[j] < syms[j-1]; j-- {
			syms[j], syms[j-1] = syms[j-1], syms[j]
		}
	}
	out := syms[:0]
	for i, s := range syms {
		if i == 0 || syms[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
