package route

import (
	"math"
	"sync"
	"sync/atomic"
)

// Entry is one posting: a subscriber identified by a dense, monotone ID
// carrying an opaque payload (the server stores its *subscription here so
// candidate generation needs no registry lookup).
type Entry[V any] struct {
	ID int64
	V  V
}

// Index is the copy-on-write inverted routing index: keyword symbol →
// posting list of subscribers sorted by ID. Writers (Subscribe,
// Unsubscribe, quarantine) mutate a master map under a mutex and publish
// an immutable snapshot through an atomic.Pointer; Candidates reads the
// snapshot with zero locks. Published posting-list slices are never
// mutated in place — every add or remove copies the affected list.
type Index[V any] struct {
	mu     sync.Mutex
	master map[uint32][]Entry[V]
	snap   atomic.Pointer[map[uint32][]Entry[V]]
}

// NewIndex returns an empty routing index.
func NewIndex[V any]() *Index[V] {
	ix := &Index[V]{master: make(map[uint32][]Entry[V])}
	ix.publishLocked()
	return ix
}

// publishLocked installs a fresh immutable snapshot of master. Caller
// holds ix.mu. The map itself is shallow-cloned; the posting slices are
// shared because they are copy-on-write.
func (ix *Index[V]) publishLocked() {
	snap := make(map[uint32][]Entry[V], len(ix.master))
	for k, v := range ix.master {
		snap[k] = v
	}
	ix.snap.Store(&snap)
}

// Add posts subscriber (id, v) under every symbol in syms (which must be
// deduplicated; see DedupSyms). Lists stay sorted by ID — IDs are
// assigned monotonically so the common case is an append.
func (ix *Index[V]) Add(id int64, v V, syms []uint32) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, sym := range syms {
		old := ix.master[sym]
		at := len(old)
		for at > 0 && old[at-1].ID > id {
			at--
		}
		next := make([]Entry[V], 0, len(old)+1)
		next = append(next, old[:at]...)
		next = append(next, Entry[V]{ID: id, V: v})
		next = append(next, old[at:]...)
		ix.master[sym] = next
	}
	ix.publishLocked()
}

// Remove deletes subscriber id from every symbol in syms. Removing an
// absent ID is a no-op per list, so quarantine followed by Unsubscribe is
// safe.
func (ix *Index[V]) Remove(id int64, syms []uint32) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, sym := range syms {
		old := ix.master[sym]
		at := -1
		for i, e := range old {
			if e.ID == id {
				at = i
				break
			}
		}
		if at < 0 {
			continue
		}
		if len(old) == 1 {
			delete(ix.master, sym)
			continue
		}
		next := make([]Entry[V], 0, len(old)-1)
		next = append(next, old[:at]...)
		next = append(next, old[at+1:]...)
		ix.master[sym] = next
	}
	ix.publishLocked()
}

// mergeLists is the stack budget for the per-post k-way merge; posts with
// more distinct live symbols spill to a heap allocation.
const mergeLists = 64

// Candidates appends, in ascending ID order and without duplicates, every
// subscriber posted under at least one symbol of syms, and returns the
// extended slice. It reads the current snapshot with zero locks; the
// caller reuses dst across posts for an allocation-free hot path. The
// merge is a linear-scan k-way merge over the (sorted) posting lists:
// O(lists × candidates) comparisons with lists bounded by the post's
// distinct matched symbols.
func (ix *Index[V]) Candidates(dst []Entry[V], syms []uint32) []Entry[V] {
	m := *ix.snap.Load()
	var listsArr [mergeLists][]Entry[V]
	lists := listsArr[:0]
	for _, sym := range syms {
		if l := m[sym]; len(l) > 0 {
			lists = append(lists, l)
		}
	}
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0]...)
	}
	var curArr [mergeLists]int
	var cur []int
	if len(lists) <= mergeLists {
		cur = curArr[:len(lists)]
		for i := range cur {
			cur[i] = 0
		}
	} else {
		cur = make([]int, len(lists))
	}
	last := int64(math.MinInt64)
	for {
		best := -1
		var bestID int64
		for i, l := range lists {
			// Skip everything at or below the last yielded ID: that is both
			// the duplicate filter and the cursor advance.
			c := cur[i]
			for c < len(l) && l[c].ID <= last {
				c++
			}
			cur[i] = c
			if c < len(l) && (best < 0 || l[c].ID < bestID) {
				best, bestID = i, l[c].ID
			}
		}
		if best < 0 {
			return dst
		}
		dst = append(dst, lists[best][cur[best]])
		last = bestID
	}
}
