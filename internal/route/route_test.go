package route

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestTableInternLookup(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("obama")
	b := tab.Intern("senate")
	if a == b {
		t.Fatalf("distinct words share symbol %d", a)
	}
	if got := tab.Intern("obama"); got != a {
		t.Errorf("re-intern = %d, want %d", got, a)
	}
	if sym, ok := tab.Lookup("senate"); !ok || sym != b {
		t.Errorf("Lookup(senate) = %d,%v want %d,true", sym, ok, b)
	}
	if _, ok := tab.Lookup("unknown"); ok {
		t.Error("Lookup(unknown) hit")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

func TestTableInternAllBatch(t *testing.T) {
	tab := NewTable()
	syms := tab.InternAll(nil, []string{"a", "b", "a", "c"})
	if len(syms) != 4 {
		t.Fatalf("len = %d, want 4", len(syms))
	}
	if syms[0] != syms[2] {
		t.Errorf("repeated word resolved to %d and %d", syms[0], syms[2])
	}
	// Re-interning an already-known batch must return identical symbols.
	again := tab.InternAll(nil, []string{"c", "b", "a"})
	want := []uint32{syms[3], syms[1], syms[0]}
	for i := range again {
		if again[i] != want[i] {
			t.Errorf("again[%d] = %d, want %d", i, again[i], want[i])
		}
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d, want 3", tab.Len())
	}
}

func TestAppendSymsSkipsUnknown(t *testing.T) {
	tab := NewTable()
	tab.InternAll(nil, []string{"x", "y"})
	syms := tab.AppendSyms(nil, []string{"x", "nope", "y", "x"})
	if len(syms) != 3 {
		t.Fatalf("len = %d, want 3 (unknown skipped, dup kept)", len(syms))
	}
}

func TestDedupSyms(t *testing.T) {
	got := DedupSyms([]uint32{5, 1, 3, 1, 5, 5, 2})
	want := []uint32{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := DedupSyms(nil); len(out) != 0 {
		t.Errorf("DedupSyms(nil) = %v", out)
	}
}

func TestIndexAddRemoveCandidates(t *testing.T) {
	ix := NewIndex[string]()
	ix.Add(1, "one", []uint32{0, 2})
	ix.Add(2, "two", []uint32{1, 2})
	ix.Add(3, "three", []uint32{0})

	ids := func(syms ...uint32) []int64 {
		var out []int64
		for _, e := range ix.Candidates(nil, syms) {
			out = append(out, e.ID)
		}
		return out
	}
	if got := ids(0); !equalIDs(got, []int64{1, 3}) {
		t.Errorf("sym 0 candidates = %v", got)
	}
	if got := ids(2); !equalIDs(got, []int64{1, 2}) {
		t.Errorf("sym 2 candidates = %v", got)
	}
	// Union over symbols dedups and stays ID-ordered.
	if got := ids(0, 1, 2); !equalIDs(got, []int64{1, 2, 3}) {
		t.Errorf("union candidates = %v", got)
	}
	if got := ids(7); got != nil {
		t.Errorf("unposted sym candidates = %v", got)
	}
	ix.Remove(1, []uint32{0, 2})
	if got := ids(0, 1, 2); !equalIDs(got, []int64{2, 3}) {
		t.Errorf("post-remove candidates = %v", got)
	}
	// Removing an absent ID is a no-op.
	ix.Remove(1, []uint32{0, 2})
	if got := ids(0, 1, 2); !equalIDs(got, []int64{2, 3}) {
		t.Errorf("idempotent remove broke candidates: %v", got)
	}
}

// TestIndexCandidatesMatchesNaive cross-checks the k-way merge against a
// brute-force union over random posting memberships, including spills past
// the stack merge budget.
func TestIndexCandidatesMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nSyms := 1 + rng.Intn(2*mergeLists) // sometimes exceeds the stack budget
		nSubs := 1 + rng.Intn(40)
		ix := NewIndex[int]()
		members := make(map[int64]map[uint32]bool)
		for id := int64(1); id <= int64(nSubs); id++ {
			var syms []uint32
			for s := 0; s < nSyms; s++ {
				if rng.Intn(3) == 0 {
					syms = append(syms, uint32(s))
				}
			}
			ix.Add(id, int(id), syms)
			set := make(map[uint32]bool)
			for _, s := range syms {
				set[s] = true
			}
			members[id] = set
		}
		var query []uint32
		for s := 0; s < nSyms; s++ {
			if rng.Intn(2) == 0 {
				query = append(query, uint32(s))
			}
		}
		var want []int64
		for id, set := range members {
			for _, s := range query {
				if set[s] {
					want = append(want, id)
					break
				}
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		for _, e := range ix.Candidates(nil, query) {
			got = append(got, e.ID)
			if int64(e.V) != e.ID {
				t.Fatalf("payload %d does not match ID %d", e.V, e.ID)
			}
		}
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: candidates = %v, want %v", trial, got, want)
		}
	}
}

// TestIndexConcurrentReaders hammers lock-free candidate reads against
// concurrent add/remove churn; run under -race this is the COW contract.
func TestIndexConcurrentReaders(t *testing.T) {
	ix := NewIndex[int]()
	tab := NewTable()
	var syms []uint32
	for i := 0; i < 16; i++ {
		syms = append(syms, tab.Intern(fmt.Sprintf("w%d", i)))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Entry[int]
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = ix.Candidates(buf[:0], syms)
				last := int64(-1)
				for _, e := range buf {
					if e.ID <= last {
						t.Errorf("candidates out of order: %d after %d", e.ID, last)
						return
					}
					last = e.ID
				}
			}
		}()
	}
	for id := int64(1); id <= 200; id++ {
		ix.Add(id, int(id), syms[:1+id%int64(len(syms))])
		if id%3 == 0 {
			ix.Remove(id-2, syms)
		}
	}
	close(stop)
	wg.Wait()
}

func TestCandidatesAllocFreeSteadyState(t *testing.T) {
	ix := NewIndex[int]()
	for id := int64(1); id <= 100; id++ {
		ix.Add(id, int(id), []uint32{uint32(id % 8)})
	}
	syms := []uint32{0, 1, 2, 3}
	buf := ix.Candidates(nil, syms)
	allocs := testing.AllocsPerRun(100, func() {
		buf = ix.Candidates(buf[:0], syms)
	})
	if allocs != 0 {
		t.Errorf("Candidates steady-state allocs = %v, want 0", allocs)
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
