package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrInjected tags transport-level injected failures so tests (and
// retry policies) can distinguish scripted chaos from real faults with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected transport fault")

// Transport wraps an http.RoundTripper with scripted faults. The op for
// each request is "METHOD /path" (query string excluded) unless OpFunc
// overrides it.
type Transport struct {
	// Base is the real transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Injector supplies the schedule; nil passes everything through.
	Injector *Injector
	// OpFunc derives the schedule op from a request.
	OpFunc func(*http.Request) string
}

// NewTransport wraps base (nil = http.DefaultTransport) with in's
// schedule.
func NewTransport(base http.RoundTripper, in *Injector) *Transport {
	return &Transport{Base: base, Injector: in}
}

func (t *Transport) op(req *http.Request) string {
	if t.OpFunc != nil {
		return t.OpFunc(req)
	}
	return req.Method + " " + req.URL.Path
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip applies the scheduled fault for this request, if any:
//
//   - drop: consume and close the body, fail without sending — the
//     server never sees the request.
//   - droprx: send the request, then discard the (possibly committed)
//     response and fail — the ambiguous-outcome case retry layers must
//     survive.
//   - delay: sleep, then send normally.
//   - status: synthesize a response with the scheduled code without
//     sending; a 429 carries "Retry-After: 0" so honoring clients
//     retry immediately.
//   - error: fail without sending.
//   - panic: panic (exercises caller-side recovery).
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f, ok := t.Injector.Eval(t.op(req))
	if !ok {
		return t.base().RoundTrip(req)
	}
	switch f.Kind {
	case KindDelay:
		time.Sleep(f.Delay)
		return t.base().RoundTrip(req)
	case KindDrop:
		closeBody(req)
		return nil, fmt.Errorf("%w: dropped request %s", ErrInjected, t.op(req))
	case KindDropResponse:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: dropped response %s", ErrInjected, t.op(req))
	case KindStatus:
		closeBody(req)
		resp := &http.Response{
			StatusCode: f.Status,
			Status:     fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader(f.Msg)),
			Request: req,
		}
		if f.Status == http.StatusTooManyRequests {
			resp.Header.Set("Retry-After", "0")
		}
		return resp, nil
	case KindError:
		closeBody(req)
		return nil, fmt.Errorf("%w: %s", ErrInjected, f.Msg)
	case KindPanic:
		closeBody(req)
		panic("faultinject: " + f.Msg)
	}
	return t.base().RoundTrip(req)
}

// closeBody honors the RoundTripper contract: the body is always closed,
// even when the request is never sent.
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}
