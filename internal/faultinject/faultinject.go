// Package faultinject is a deterministic fault-injection layer for chaos
// testing the serving path. A scripted schedule names operations ("POST
// /ingest", "sub3.process") and, per operation, which invocations fail
// and how (drop the request, drop the response, delay, synthesize an
// HTTP status, return an error, panic). Count-based rules are exactly
// reproducible; probability-based rules draw from a seeded RNG, so a
// fixed seed replays the same chaos byte-for-byte for a single-threaded
// driver.
//
// Two delivery surfaces share one Injector:
//
//   - Transport wraps an http.RoundTripper, deriving the op from the
//     request ("METHOD /path") — the client-side network chaos.
//   - Fire(op) is the in-process hook servers call at interesting
//     points — it sleeps, returns an error, or panics per the schedule.
//
// Every injected fault is counted per action kind (and per op|kind), so
// tests reconcile observability counters against ground truth.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is a fault action.
type Kind int

const (
	// KindNone: no fault (the zero Fault).
	KindNone Kind = iota
	// KindDrop: fail before the request is sent (never reaches the server).
	KindDrop
	// KindDropResponse: send the request, then discard the response —
	// the server did the work but the caller cannot know.
	KindDropResponse
	// KindDelay: sleep, then proceed normally.
	KindDelay
	// KindStatus: synthesize an HTTP response with Status without
	// sending the request (transport only).
	KindStatus
	// KindError: return an error.
	KindError
	// KindPanic: panic with Msg (in-process hooks only).
	KindPanic
	// KindDisk: simulate a storage failure (disk full, fsync error) at an
	// in-process IO hook — Fire returns an error wrapping ErrDisk, which
	// the durability layer treats exactly like a real device failure.
	KindDisk
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindDropResponse:
		return "droprx"
	case KindDelay:
		return "delay"
	case KindStatus:
		return "status"
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDisk:
		return "disk"
	}
	return "unknown"
}

// ErrDisk is the base of every injected storage fault, so IO layers can
// classify injected failures with errors.Is exactly like real ones.
var ErrDisk = errors.New("faultinject: injected disk fault")

// Fault is one scheduled action.
type Fault struct {
	Kind   Kind
	Delay  time.Duration // KindDelay
	Status int           // KindStatus
	Msg    string        // KindError / KindPanic / KindStatus body
}

// rule matches an op either on an invocation-count window [from, to]
// (1-based, inclusive) or, when prob > 0, on a coin flip per call.
type rule struct {
	op       string
	from, to int64
	prob     float64
	fault    Fault
}

// Injector evaluates a parsed schedule. Safe for concurrent use;
// probabilistic rules are only deterministic when calls arrive in a
// deterministic order (single-threaded driver).
type Injector struct {
	mu       sync.Mutex
	rules    []rule
	calls    map[string]int64 // invocations per op
	injected map[string]int64 // injected faults, keyed kind and "op|kind"
	rng      *rand.Rand
}

// ParseSchedule compiles a schedule string into an Injector. Grammar
// (spaces around tokens are trimmed; empty rules are skipped):
//
//	schedule := rule (';' rule)*
//	rule     := op '@' spec '=' action
//	spec     := N | N '-' M | N '+' | '*' | 'p' FLOAT
//	action   := 'drop' | 'droprx' | 'delay:' DURATION |
//	            'status:' CODE | 'error:' MSG | 'panic:' MSG | 'disk:' MSG
//
// N, M are 1-based invocation counts of op: "3" fires on the 3rd call,
// "3-5" on calls 3..5, "3+" on every call from the 3rd, "*" always,
// "p0.1" on each call with probability 0.1 (seeded). Example:
//
//	POST /ingest@3=drop; POST /ingest@p0.05=status:503; sub2.process@7=panic:boom
//
// The first matching rule wins per call. seed drives the probabilistic
// rules only.
func ParseSchedule(s string, seed int64) (*Injector, error) {
	in := &Injector{
		calls:    make(map[string]int64),
		injected: make(map[string]int64),
		rng:      rand.New(rand.NewSource(seed)),
	}
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		left, action, ok := strings.Cut(raw, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: rule %q: missing '='", raw)
		}
		at := strings.LastIndex(left, "@")
		if at < 0 {
			return nil, fmt.Errorf("faultinject: rule %q: missing '@'", raw)
		}
		r := rule{op: strings.TrimSpace(left[:at])}
		if r.op == "" {
			return nil, fmt.Errorf("faultinject: rule %q: empty op", raw)
		}
		if err := parseSpec(strings.TrimSpace(left[at+1:]), &r); err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: %w", raw, err)
		}
		f, err := parseAction(strings.TrimSpace(action))
		if err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: %w", raw, err)
		}
		r.fault = f
		in.rules = append(in.rules, r)
	}
	return in, nil
}

func parseSpec(spec string, r *rule) error {
	switch {
	case spec == "*":
		r.from, r.to = 1, math.MaxInt64
	case strings.HasPrefix(spec, "p"):
		p, err := strconv.ParseFloat(spec[1:], 64)
		if err != nil || p <= 0 || p > 1 {
			return fmt.Errorf("bad probability %q", spec)
		}
		r.prob = p
	case strings.HasSuffix(spec, "+"):
		n, err := strconv.ParseInt(spec[:len(spec)-1], 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("bad spec %q", spec)
		}
		r.from, r.to = n, math.MaxInt64
	case strings.Contains(spec, "-"):
		lo, hi, _ := strings.Cut(spec, "-")
		n, err1 := strconv.ParseInt(lo, 10, 64)
		m, err2 := strconv.ParseInt(hi, 10, 64)
		if err1 != nil || err2 != nil || n < 1 || m < n {
			return fmt.Errorf("bad range %q", spec)
		}
		r.from, r.to = n, m
	default:
		n, err := strconv.ParseInt(spec, 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("bad spec %q", spec)
		}
		r.from, r.to = n, n
	}
	return nil
}

func parseAction(action string) (Fault, error) {
	name, arg, _ := strings.Cut(action, ":")
	switch name {
	case "drop":
		return Fault{Kind: KindDrop}, nil
	case "droprx":
		return Fault{Kind: KindDropResponse}, nil
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return Fault{}, fmt.Errorf("bad delay %q", arg)
		}
		return Fault{Kind: KindDelay, Delay: d}, nil
	case "status":
		code, err := strconv.Atoi(arg)
		if err != nil || code < 100 || code > 599 {
			return Fault{}, fmt.Errorf("bad status %q", arg)
		}
		return Fault{Kind: KindStatus, Status: code, Msg: "faultinject: injected status " + arg}, nil
	case "error":
		if arg == "" {
			arg = "injected error"
		}
		return Fault{Kind: KindError, Msg: arg}, nil
	case "panic":
		if arg == "" {
			arg = "injected panic"
		}
		return Fault{Kind: KindPanic, Msg: arg}, nil
	case "disk":
		if arg == "" {
			arg = "no space left on device"
		}
		return Fault{Kind: KindDisk, Msg: arg}, nil
	}
	return Fault{}, fmt.Errorf("unknown action %q", action)
}

// Eval counts one invocation of op and returns the scheduled fault, if
// any. It only records bookkeeping; the caller applies the fault (see
// Fire and Transport). A nil Injector never injects.
func (in *Injector) Eval(op string) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[op]++
	n := in.calls[op]
	for _, r := range in.rules {
		if r.op != op {
			continue
		}
		hit := false
		if r.prob > 0 {
			hit = in.rng.Float64() < r.prob
		} else {
			hit = n >= r.from && n <= r.to
		}
		if hit {
			in.injected[r.fault.Kind.String()]++
			in.injected[op+"|"+r.fault.Kind.String()]++
			return r.fault, true
		}
	}
	return Fault{}, false
}

// Fire is the in-process hook: it evaluates op and applies the fault —
// sleeping for delays, panicking for panics, and returning an error for
// error/status/drop kinds. A nil Injector is a no-op, so hot paths gate
// on the pointer only.
func (in *Injector) Fire(op string) error {
	f, ok := in.Eval(op)
	if !ok {
		return nil
	}
	switch f.Kind {
	case KindDelay:
		time.Sleep(f.Delay)
		return nil
	case KindPanic:
		panic("faultinject: " + f.Msg)
	case KindStatus:
		return fmt.Errorf("faultinject: injected status %d", f.Status)
	case KindError:
		return fmt.Errorf("faultinject: %s", f.Msg)
	case KindDrop, KindDropResponse:
		return fmt.Errorf("faultinject: injected %s", f.Kind)
	case KindDisk:
		return fmt.Errorf("%w: %s", ErrDisk, f.Msg)
	}
	return nil
}

// Calls reports how many times op has been evaluated.
func (in *Injector) Calls(op string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[op]
}

// Counts returns a copy of the injected-fault counters, keyed by action
// kind ("drop", "droprx", "delay", "status", "error", "panic") and by
// "op|kind" for per-op ground truth.
func (in *Injector) Counts() map[string]int64 {
	out := make(map[string]int64)
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for k, v := range in.injected {
		out[k] = v
	}
	return out
}
