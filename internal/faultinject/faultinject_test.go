package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"noequals",
		"op=drop",            // missing @spec
		"op@=drop",           // empty spec
		"@3=drop",            // empty op
		"op@0=drop",          // counts are 1-based
		"op@5-3=drop",        // inverted range
		"op@p1.5=drop",       // probability out of range
		"op@3=explode",       // unknown action
		"op@3=delay:xx",      // bad duration
		"op@3=status:999999", // bad status
	}
	for _, s := range bad {
		if _, err := ParseSchedule(s, 1); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", s)
		}
	}
	in, err := ParseSchedule("  ; op@3=drop ;; ", 1)
	if err != nil {
		t.Fatalf("empty rules rejected: %v", err)
	}
	if len(in.rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(in.rules))
	}
}

func TestEvalCountWindows(t *testing.T) {
	in, err := ParseSchedule("a@3=drop; b@2-4=error:x; c@5+=droprx; d@*=delay:1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	fired := func(op string, n int) []int {
		var hits []int
		for i := 1; i <= n; i++ {
			if _, ok := in.Eval(op); ok {
				hits = append(hits, i)
			}
		}
		return hits
	}
	if got := fired("a", 6); len(got) != 1 || got[0] != 3 {
		t.Errorf("a@3 fired on %v", got)
	}
	if got := fired("b", 6); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("b@2-4 fired on %v", got)
	}
	if got := fired("c", 7); len(got) != 3 || got[0] != 5 {
		t.Errorf("c@5+ fired on %v", got)
	}
	if got := fired("d", 3); len(got) != 3 {
		t.Errorf("d@* fired on %v", got)
	}
	// Unscheduled op never fires but is still counted.
	if _, ok := in.Eval("zzz"); ok {
		t.Error("unscheduled op fired")
	}
	if in.Calls("zzz") != 1 || in.Calls("a") != 6 {
		t.Errorf("calls: zzz=%d a=%d", in.Calls("zzz"), in.Calls("a"))
	}
	counts := in.Counts()
	if counts["drop"] != 1 || counts["error"] != 3 || counts["droprx"] != 3 || counts["delay"] != 3 {
		t.Errorf("counts = %v", counts)
	}
	if counts["a|drop"] != 1 {
		t.Errorf("per-op count = %v", counts)
	}
}

func TestEvalProbabilisticDeterministic(t *testing.T) {
	run := func() []int {
		in, err := ParseSchedule("x@p0.3=drop", 99)
		if err != nil {
			t.Fatal(err)
		}
		var hits []int
		for i := 1; i <= 200; i++ {
			if _, ok := in.Eval("x"); ok {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d hits", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d: call %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFire(t *testing.T) {
	in, err := ParseSchedule("slow@1=delay:5ms; boom@1=panic:kaput; bad@1=error:oops", 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.Fire("slow"); err != nil {
		t.Errorf("delay Fire = %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("delay did not sleep")
	}
	if err := in.Fire("bad"); err == nil || !strings.Contains(err.Error(), "oops") {
		t.Errorf("error Fire = %v", err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(r.(string), "kaput") {
				t.Errorf("panic Fire recovered %v", r)
			}
		}()
		in.Fire("boom")
		t.Error("panic Fire returned")
	}()
	// nil injector: free no-op.
	var nilIn *Injector
	if err := nilIn.Fire("anything"); err != nil {
		t.Errorf("nil Fire = %v", err)
	}
	if _, ok := nilIn.Eval("x"); ok || nilIn.Calls("x") != 0 || len(nilIn.Counts()) != 0 {
		t.Error("nil injector not inert")
	}
}

func TestTransportFaults(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	in, err := ParseSchedule(
		"GET /a@1=drop; GET /b@1=droprx; GET /c@1=status:503; GET /d@1=delay:5ms; GET /e@1=error:sad; GET /f@1=status:429", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := &http.Client{Transport: NewTransport(nil, in)}

	get := func(path string) (*http.Response, error) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		return c.Do(req)
	}

	// drop: error, server never touched.
	if _, err := get("/a"); err == nil || !errors.Is(errors.Unwrap(err), ErrInjected) && !strings.Contains(err.Error(), "dropped request") {
		t.Errorf("drop = %v", err)
	}
	if served.Load() != 0 {
		t.Fatalf("drop reached the server (%d)", served.Load())
	}
	// droprx: error, but the server DID the work.
	if _, err := get("/b"); err == nil || !strings.Contains(err.Error(), "dropped response") {
		t.Errorf("droprx = %v", err)
	}
	if served.Load() != 1 {
		t.Fatalf("droprx served = %d, want 1", served.Load())
	}
	// status: synthesized 503, server never touched.
	resp, err := get("/c")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %v, %v", resp, err)
	}
	resp.Body.Close()
	if served.Load() != 1 {
		t.Fatalf("status reached the server")
	}
	// 429 carries Retry-After.
	resp, err = get("/f")
	if err != nil || resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "0" {
		t.Fatalf("429 = %v, %v", resp, err)
	}
	resp.Body.Close()
	// delay: slow but successful.
	start := time.Now()
	resp, err = get("/d")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delay = %v, %v", resp, err)
	}
	resp.Body.Close()
	if time.Since(start) < 5*time.Millisecond {
		t.Error("delay did not sleep")
	}
	// error: plain failure.
	if _, err := get("/e"); err == nil || !strings.Contains(err.Error(), "sad") {
		t.Errorf("error = %v", err)
	}
	// Second call to a @1 op passes clean.
	resp, err = get("/a")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault /a = %v, %v", resp, err)
	}
	resp.Body.Close()

	counts := in.Counts()
	for _, k := range []string{"drop", "droprx", "status", "delay", "error"} {
		want := int64(1)
		if k == "status" {
			want = 2
		}
		if counts[k] != want {
			t.Errorf("counts[%s] = %d, want %d (all: %v)", k, counts[k], want, counts)
		}
	}

	// nil injector: pure pass-through.
	clean := &http.Client{Transport: NewTransport(nil, nil)}
	resp, err = clean.Get(ts.URL + "/z")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pass-through = %v, %v", resp, err)
	}
	resp.Body.Close()
}
