package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"mqdp/internal/core"
)

func FuzzReadPosts(f *testing.F) {
	f.Add(`{"id":1,"value":10,"labels":["a"]}`)
	f.Add(`{"id":1,"value":10,"labels":["a","a","b"]}` + "\n" + `{"id":2,"value":-3,"labels":[]}`)
	f.Add(`{"id":1e99,"value":1e308,"labels":["x"]}`)
	f.Add("not json")
	f.Add("")
	f.Add(`{"id":1,"value":null,"labels":null}`)
	f.Fuzz(func(t *testing.T, src string) {
		var dict core.Dictionary
		posts, err := ReadPosts(strings.NewReader(src), &dict) // must not panic
		if err != nil {
			return
		}
		// Every decoded post must satisfy core's label invariants.
		for _, p := range posts {
			for i := 1; i < len(p.Labels); i++ {
				if p.Labels[i] <= p.Labels[i-1] {
					t.Fatalf("labels not sorted/deduplicated: %v (src %q)", p.Labels, src)
				}
			}
			for _, a := range p.Labels {
				if a < 0 || int(a) >= dict.Len() {
					t.Fatalf("label %d outside dictionary (len %d)", a, dict.Len())
				}
			}
		}
	})
}

// FuzzDecodeFrame throws arbitrary bytes at the full binary decode path:
// frame header, optional decompression, and every batch codec. The
// invariants: no panic, no over-allocation (enforced structurally by the
// count checks), and every failure is one of the typed base errors.
func FuzzDecodeFrame(f *testing.F) {
	enc := GetEncoder()
	f.Add(append([]byte(nil), enc.EncodeStreamPosts([]StreamPost{{ID: 1, Time: 2, Text: "hello"}}, -1)...))
	f.Add(append([]byte(nil), enc.EncodeStreamPosts(make([]StreamPost, 600), 0)...)) // compressed
	f.Add(append([]byte(nil), enc.EncodeEmissions([]Emission{{Seq: 1, Topics: []string{"t"}}}, 1<<30)...))
	f.Add(append([]byte(nil), enc.EncodeTopK(7, 10, []Emission{{Seq: 1, Topics: []string{"t"}}}, 1<<30)...))
	var dict core.Dictionary
	dict.Intern("a")
	lf, _ := enc.EncodeLabeledPosts([]core.Post{{ID: 3, Value: 1, Labels: []core.Label{0}}}, []string{"a"}, -1)
	f.Add(append([]byte(nil), lf...))
	PutEncoder(enc)
	f.Add([]byte{magic0, magic1, FrameVersion, 0, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{magic0, magic1})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := GetDecoder()
		defer PutDecoder(dec)
		kind, body, _, err := dec.DecodeFrame(data) // must not panic
		if err != nil {
			if err != io.EOF && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
				!errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		switch kind {
		case KindStreamPosts:
			if _, err := AppendStreamPosts(nil, body); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped stream error: %v", err)
			}
		case KindEmissions:
			if _, err := AppendEmissions(nil, body); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped emission error: %v", err)
			}
		case KindTopK:
			if _, _, _, err := DecodeTopK(body); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped topk error: %v", err)
			}
		case KindLabeledPosts:
			var d core.Dictionary
			posts, err := AppendLabeledPosts(nil, body, &d)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("untyped labeled error: %v", err)
				}
				return
			}
			for _, p := range posts {
				for i := 1; i < len(p.Labels); i++ {
					if p.Labels[i] <= p.Labels[i-1] {
						t.Fatalf("decoded labels not sorted/deduplicated: %v", p.Labels)
					}
				}
			}
		}
	})
}

// FuzzBinaryRoundTrip is the property test: pseudo-random batches derived
// from the fuzzed seed must encode and decode identically, with and
// without compression.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), false)
	f.Add(int64(42), uint8(100), true)
	f.Add(int64(-9), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, compress bool) {
		rng := rand.New(rand.NewSource(seed))
		threshold := 1 << 30
		if compress {
			threshold = 0
		}
		posts := make([]StreamPost, int(n))
		for i := range posts {
			posts[i] = StreamPost{
				ID:   rng.Int63() - rng.Int63(),
				Time: rng.NormFloat64() * 1e6,
				Text: randText(rng),
			}
		}
		enc := GetEncoder()
		frame := append([]byte(nil), enc.EncodeStreamPosts(posts, threshold)...)
		PutEncoder(enc)
		dec := GetDecoder()
		defer PutDecoder(dec)
		kind, body, err := dec.ReadFrame(bytes.NewReader(frame))
		if err != nil || kind != KindStreamPosts {
			t.Fatalf("decode: kind 0x%02x, %v", kind, err)
		}
		got, err := AppendStreamPosts(nil, body)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(posts) {
			t.Fatalf("decoded %d posts, want %d", len(got), len(posts))
		}
		for i := range posts {
			same := got[i].ID == posts[i].ID && got[i].Text == posts[i].Text &&
				(got[i].Time == posts[i].Time || (got[i].Time != got[i].Time && posts[i].Time != posts[i].Time))
			if !same {
				t.Fatalf("post %d = %+v, want %+v", i, got[i], posts[i])
			}
		}
	})
}

func randText(rng *rand.Rand) string {
	words := rng.Intn(8)
	var sb strings.Builder
	for i := 0; i < words; i++ {
		fmt.Fprintf(&sb, "w%d ", rng.Intn(1000))
	}
	return sb.String()
}
