package wire

import (
	"strings"
	"testing"

	"mqdp/internal/core"
)

func FuzzReadPosts(f *testing.F) {
	f.Add(`{"id":1,"value":10,"labels":["a"]}`)
	f.Add(`{"id":1,"value":10,"labels":["a","a","b"]}` + "\n" + `{"id":2,"value":-3,"labels":[]}`)
	f.Add(`{"id":1e99,"value":1e308,"labels":["x"]}`)
	f.Add("not json")
	f.Add("")
	f.Add(`{"id":1,"value":null,"labels":null}`)
	f.Fuzz(func(t *testing.T, src string) {
		var dict core.Dictionary
		posts, err := ReadPosts(strings.NewReader(src), &dict) // must not panic
		if err != nil {
			return
		}
		// Every decoded post must satisfy core's label invariants.
		for _, p := range posts {
			for i := 1; i < len(p.Labels); i++ {
				if p.Labels[i] <= p.Labels[i-1] {
					t.Fatalf("labels not sorted/deduplicated: %v (src %q)", p.Labels, src)
				}
			}
			for _, a := range p.Labels {
				if a < 0 || int(a) >= dict.Len() {
					t.Fatalf("label %d outside dictionary (len %d)", a, dict.Len())
				}
			}
		}
	})
}
