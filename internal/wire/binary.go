// Binary wire format: a length-prefixed frame carrying a compact batch
// encoding, negotiated over HTTP via Content-Type/Accept and stored on
// disk as .mqdw files alongside JSONL (auto-detected by magic bytes).
//
// Frame layout (little-endian):
//
//	offset 0  magic      2 bytes  0x8D 0x51 ("MQ" with the high bit set on
//	                              the first byte, so no JSONL/UTF-8 stream
//	                              can start with it)
//	offset 2  version    1 byte   currently 1
//	offset 3  flags      1 byte   bit 0: payload is DEFLATE-compressed
//	offset 4  length     4 bytes  uint32 payload length as transmitted
//	offset 8  payload    length bytes
//
// The (decompressed) payload is a kind byte followed by a kind-specific
// body. All integers are unsigned varints; signed values are zigzag-coded;
// floats are 8-byte little-endian IEEE 754 bits.
//
//	KindLabeledPosts: label-dictionary delta (count, then len-prefixed
//	  names for every label interned since the previous frame), post count,
//	  then per post: zigzag id, value bits, label count, and the sorted
//	  label ids as a first id plus strictly positive gaps.
//	KindStreamPosts: post count, then per post: zigzag id, time bits,
//	  len-prefixed text.
//	KindEmissions: emission count, then per emission: seq, zigzag post id,
//	  time bits, len-prefixed text, topic count with len-prefixed topics,
//	  emit-at bits.
//	KindTopK: view version, view size k, then the visible top-k items in
//	  rank order using the KindEmissions per-emission record encoding.
//
// Decoding is pooled: GetDecoder/GetEncoder/GetStreamBatch hand out
// sync.Pool-backed scratch whose buffers survive across frames, so batch
// decode performs O(1) heap allocations per post (the text string) instead
// of per-field. Buffers returned by Encode*/ReadFrame are owned by the
// encoder/decoder and valid only until its next call.
package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"mqdp/internal/core"
)

// Content types for HTTP negotiation. JSON remains the default; clients
// opt into frames per request via Content-Type (ingest) or Accept (polls).
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-mqdp-frame"
)

// IsBinary reports whether an HTTP Content-Type (or Accept) value selects
// the binary frame format, ignoring parameters like charset.
func IsBinary(contentType string) bool {
	v, _, _ := strings.Cut(contentType, ";")
	return strings.TrimSpace(v) == ContentTypeBinary
}

// AcceptsBinary reports whether an Accept header lists the frame format.
func AcceptsBinary(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		if IsBinary(part) {
			return true
		}
	}
	return false
}

// Frame geometry.
const (
	magic0 = 0x8D // invalid as a UTF-8 lead byte: JSONL can never start with it
	magic1 = 0x51 // 'Q'

	// FrameVersion is the format version emitted and accepted.
	FrameVersion = 1

	// FrameHeaderLen is the fixed header size preceding every payload.
	FrameHeaderLen = 8

	flagCompressed = 0x01

	// MaxFramePayload bounds a single frame's payload (transmitted and
	// decompressed alike); larger length fields are rejected before any
	// allocation proportional to them happens.
	MaxFramePayload = 64 << 20

	// DefaultCompressThreshold is the payload size above which encoders
	// DEFLATE-compress the frame. Small batches skip compression: the CPU
	// cost outweighs the bytes saved (the compressPackage idiom).
	DefaultCompressThreshold = 4 << 10
)

// Payload kinds.
const (
	// KindLabeledPosts carries core posts (id, value, interned labels)
	// plus the label-dictionary delta for the batch — the .mqdw file kind.
	KindLabeledPosts byte = 0x01
	// KindStreamPosts carries server ingest posts (id, time, text).
	KindStreamPosts byte = 0x02
	// KindEmissions carries subscription emissions for poll responses.
	KindEmissions byte = 0x03
	// KindTopK carries a continuous diversified top-k view snapshot:
	// version, k, then the visible items as emission records.
	KindTopK byte = 0x04
)

// Typed decode errors. Every malformed input maps onto one of these bases
// (wrapped with detail), never a panic.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrBadVersion    = errors.New("wire: unsupported frame version")
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrCorrupt       = errors.New("wire: corrupt frame")
)

// Minimum encoded sizes per record, used to reject absurd counts before
// allocating slices proportional to them.
const (
	minStreamPostBytes  = 10 // 1 id + 8 time + 1 text len
	minLabeledPostBytes = 10 // 1 id + 8 value + 1 label count
	minEmissionBytes    = 20 // 1 seq + 1 id + 8 time + 1 len + 1 topics + 8 emit
)

// StreamPost is the ingest post shape (field-identical to the server's
// Post so the two convert directly).
type StreamPost struct {
	ID   int64
	Time float64
	Text string
}

// Emission is the poll emission shape (field-identical to the server's
// Emission so the two convert directly).
type Emission struct {
	Seq    int64
	PostID int64
	Time   float64
	Text   string
	Topics []string
	EmitAt float64
}

// ---------------------------------------------------------------------------
// Varint helpers

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// body is a cursor over a payload body with typed-error reads.
type body struct {
	b []byte
}

func (c *body) len() int { return len(c.b) }

func (c *body) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *body) float64() (float64, error) {
	if len(c.b) < 8 {
		return 0, fmt.Errorf("%w: short float", ErrCorrupt)
	}
	bits := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return math.Float64frombits(bits), nil
}

// bytes reads a uvarint length followed by that many raw bytes.
func (c *body) bytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.b)) {
		return nil, fmt.Errorf("%w: string length %d exceeds remaining %d", ErrCorrupt, n, len(c.b))
	}
	s := c.b[:n]
	c.b = c.b[n:]
	return s, nil
}

// count reads a record count and validates it against the bytes actually
// present, so a hostile count can never drive a large allocation.
func (c *body) count(minRecordBytes int) (int, error) {
	n, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(c.b)/minRecordBytes) {
		return 0, fmt.Errorf("%w: count %d exceeds payload capacity", ErrCorrupt, n)
	}
	return int(n), nil
}

// ---------------------------------------------------------------------------
// Encoder

// Encoder builds frames into reusable scratch buffers. Not safe for
// concurrent use; pool with GetEncoder/PutEncoder. Returned frames are
// valid until the next Encode call on the same Encoder.
type Encoder struct {
	payload []byte // kind + body
	frame   []byte // header + transmitted payload
	fw      *flate.Writer
}

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder fetches a pooled encoder.
func GetEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// PutEncoder returns e to the pool. Oversized scratch is dropped so one
// huge batch doesn't pin its buffers forever.
func PutEncoder(e *Encoder) {
	const keep = 8 << 20
	if cap(e.payload) > keep {
		e.payload = nil
	}
	if cap(e.frame) > keep {
		e.frame = nil
	}
	encoderPool.Put(e)
}

func (e *Encoder) appendUvarint(v uint64) { e.payload = binary.AppendUvarint(e.payload, v) }
func (e *Encoder) appendZigzag(v int64)   { e.payload = binary.AppendUvarint(e.payload, zigzag(v)) }
func (e *Encoder) appendFloat64(f float64) {
	e.payload = binary.LittleEndian.AppendUint64(e.payload, math.Float64bits(f))
}
func (e *Encoder) appendString(s string) {
	e.appendUvarint(uint64(len(s)))
	e.payload = append(e.payload, s...)
}

// EncodeStreamPosts encodes one KindStreamPosts frame. Payloads larger
// than compressThreshold are compressed (≤ 0 means always; use a huge
// threshold to disable).
func (e *Encoder) EncodeStreamPosts(posts []StreamPost, compressThreshold int) []byte {
	e.payload = append(e.payload[:0], KindStreamPosts)
	e.appendUvarint(uint64(len(posts)))
	for i := range posts {
		e.appendZigzag(posts[i].ID)
		e.appendFloat64(posts[i].Time)
		e.appendString(posts[i].Text)
	}
	return e.finish(compressThreshold)
}

// EncodeEmissions encodes one KindEmissions frame.
func (e *Encoder) EncodeEmissions(es []Emission, compressThreshold int) []byte {
	e.payload = append(e.payload[:0], KindEmissions)
	e.appendEmissionRecords(es)
	return e.finish(compressThreshold)
}

// EncodeTopK encodes one KindTopK frame: the view's change version, its
// configured size k, then the visible items in rank order, reusing the
// emission record encoding.
func (e *Encoder) EncodeTopK(version uint64, k int, es []Emission, compressThreshold int) []byte {
	e.payload = append(e.payload[:0], KindTopK)
	e.appendUvarint(version)
	e.appendUvarint(uint64(k))
	e.appendEmissionRecords(es)
	return e.finish(compressThreshold)
}

// appendEmissionRecords appends the shared emission batch body: a count,
// then per-emission records (used by KindEmissions and KindTopK).
func (e *Encoder) appendEmissionRecords(es []Emission) {
	e.appendUvarint(uint64(len(es)))
	for i := range es {
		em := &es[i]
		e.appendUvarint(uint64(em.Seq))
		e.appendZigzag(em.PostID)
		e.appendFloat64(em.Time)
		e.appendString(em.Text)
		e.appendUvarint(uint64(len(em.Topics)))
		for _, t := range em.Topics {
			e.appendString(t)
		}
		e.appendFloat64(em.EmitAt)
	}
}

// EncodeLabeledPosts encodes one KindLabeledPosts frame. newNames are the
// label names interned since the previous frame on this logical stream
// (the dictionary delta); every post's Labels must be sorted, deduplicated
// ids below the cumulative dictionary length, as core guarantees.
func (e *Encoder) EncodeLabeledPosts(posts []core.Post, newNames []string, compressThreshold int) ([]byte, error) {
	e.payload = append(e.payload[:0], KindLabeledPosts)
	e.appendUvarint(uint64(len(newNames)))
	for _, name := range newNames {
		e.appendString(name)
	}
	e.appendUvarint(uint64(len(posts)))
	for i := range posts {
		p := &posts[i]
		e.appendZigzag(p.ID)
		e.appendFloat64(p.Value)
		e.appendUvarint(uint64(len(p.Labels)))
		prev := core.Label(-1)
		for j, l := range p.Labels {
			if l <= prev || l < 0 {
				return nil, fmt.Errorf("wire: post %d labels not sorted/deduplicated", p.ID)
			}
			if j == 0 {
				e.appendUvarint(uint64(l))
			} else {
				e.appendUvarint(uint64(l - prev))
			}
			prev = l
		}
	}
	return e.finish(compressThreshold), nil
}

// finish wraps e.payload in a frame header, compressing when the payload
// clears the threshold and compression actually shrinks it.
func (e *Encoder) finish(compressThreshold int) []byte {
	payload := e.payload
	flags := byte(0)
	if compressThreshold >= 0 && len(payload) > compressThreshold {
		if comp, ok := e.compress(payload); ok {
			payload = comp
			flags |= flagCompressed
		}
	}
	e.frame = append(e.frame[:0], magic0, magic1, FrameVersion, flags)
	e.frame = binary.LittleEndian.AppendUint32(e.frame, uint32(len(payload)))
	e.frame = append(e.frame, payload...)
	return e.frame
}

// compress DEFLATEs src into the tail of e.frame's scratch space. ok is
// false when compression does not shrink the payload.
func (e *Encoder) compress(src []byte) ([]byte, bool) {
	var buf bytes.Buffer
	buf.Grow(len(src) / 2)
	if e.fw == nil {
		e.fw, _ = flate.NewWriter(&buf, flate.BestSpeed)
	} else {
		e.fw.Reset(&buf)
	}
	if _, err := e.fw.Write(src); err != nil {
		return nil, false
	}
	if err := e.fw.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(src) {
		return nil, false
	}
	return buf.Bytes(), true
}

// ---------------------------------------------------------------------------
// Decoder

// Decoder reads frames into reusable scratch buffers. Not safe for
// concurrent use; pool with GetDecoder/PutDecoder. Payloads returned by
// ReadFrame/DecodeFrame are valid until the next call on the same Decoder.
type Decoder struct {
	hdr  [FrameHeaderLen]byte
	raw  []byte // transmitted payload
	dcmp []byte // decompression scratch
	br   bytes.Reader
	fr   io.ReadCloser // flate reader, reused via flate.Resetter
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder fetches a pooled decoder.
func GetDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// PutDecoder returns d to the pool, dropping oversized scratch.
func PutDecoder(d *Decoder) {
	const keep = 8 << 20
	if cap(d.raw) > keep {
		d.raw = nil
	}
	if cap(d.dcmp) > keep {
		d.dcmp = nil
	}
	decoderPool.Put(d)
}

// ReadFrame reads and validates one frame from r, returning its kind and
// decompressed body (payload minus the kind byte). A clean end of stream
// returns io.EOF; a stream that stops mid-frame returns ErrTruncated.
func (d *Decoder) ReadFrame(r io.Reader) (kind byte, frameBody []byte, err error) {
	if _, err := io.ReadFull(r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	return d.decodeAfterHeader(r)
}

// DecodeFrame decodes one complete frame from data, returning the bytes
// consumed so callers can walk concatenated frames in memory.
func (d *Decoder) DecodeFrame(data []byte) (kind byte, frameBody []byte, n int, err error) {
	d.br.Reset(data)
	kind, frameBody, err = d.ReadFrame(&d.br)
	return kind, frameBody, len(data) - d.br.Len(), err
}

func (d *Decoder) decodeAfterHeader(r io.Reader) (byte, []byte, error) {
	if d.hdr[0] != magic0 || d.hdr[1] != magic1 {
		return 0, nil, fmt.Errorf("%w: 0x%02x%02x", ErrBadMagic, d.hdr[0], d.hdr[1])
	}
	if d.hdr[2] != FrameVersion {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, d.hdr[2])
	}
	flags := d.hdr[3]
	n := binary.LittleEndian.Uint32(d.hdr[4:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: payload %d > %d", ErrFrameTooLarge, n, MaxFramePayload)
	}
	var err error
	if d.raw, err = readChunked(r, d.raw[:0], int(n)); err != nil {
		return 0, nil, err
	}
	payload := d.raw
	if flags&flagCompressed != 0 {
		if payload, err = d.decompress(payload); err != nil {
			return 0, nil, err
		}
	}
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	return payload[0], payload[1:], nil
}

// readChunked fills dst to want bytes in bounded steps, so a frame whose
// length field lies about a huge payload only ever allocates proportionally
// to the bytes the peer actually sent.
func readChunked(r io.Reader, dst []byte, want int) ([]byte, error) {
	const step = 256 << 10
	for len(dst) < want {
		n := want - len(dst)
		if n > step {
			n = step
		}
		if cap(dst)-len(dst) < n {
			dst = append(dst, make([]byte, n)...)[:len(dst)]
		}
		read, err := io.ReadFull(r, dst[len(dst):len(dst)+n])
		dst = dst[:len(dst)+read]
		if err != nil {
			return dst, fmt.Errorf("%w: payload: have %d of %d bytes", ErrTruncated, len(dst), want)
		}
	}
	return dst, nil
}

// decompress inflates src into d.dcmp, enforcing MaxFramePayload on the
// decompressed size as well (a tiny frame must not balloon unboundedly).
func (d *Decoder) decompress(src []byte) ([]byte, error) {
	d.br.Reset(src)
	if d.fr == nil {
		d.fr = flate.NewReader(&d.br)
	} else if err := d.fr.(flate.Resetter).Reset(&d.br, nil); err != nil {
		return nil, fmt.Errorf("%w: flate reset: %v", ErrCorrupt, err)
	}
	d.dcmp = d.dcmp[:0]
	const step = 256 << 10
	for {
		if len(d.dcmp) > MaxFramePayload {
			return nil, fmt.Errorf("%w: decompressed payload exceeds %d", ErrFrameTooLarge, MaxFramePayload)
		}
		if cap(d.dcmp)-len(d.dcmp) < step {
			d.dcmp = append(d.dcmp, make([]byte, step)...)[:len(d.dcmp)]
		}
		n, err := d.fr.Read(d.dcmp[len(d.dcmp):cap(d.dcmp)])
		d.dcmp = d.dcmp[:len(d.dcmp)+n]
		if err == io.EOF {
			return d.dcmp, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: flate: %v", ErrCorrupt, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Batch codecs

// AppendStreamPosts decodes a KindStreamPosts body, appending onto dst.
// The only per-post heap allocation is the text string.
func AppendStreamPosts(dst []StreamPost, frameBody []byte) ([]StreamPost, error) {
	c := body{frameBody}
	n, err := c.count(minStreamPostBytes)
	if err != nil {
		return dst, err
	}
	if cap(dst)-len(dst) < n {
		dst = append(make([]StreamPost, 0, len(dst)+n), dst...)
	}
	for i := 0; i < n; i++ {
		var p StreamPost
		id, err := c.uvarint()
		if err != nil {
			return dst, err
		}
		p.ID = unzigzag(id)
		if p.Time, err = c.float64(); err != nil {
			return dst, err
		}
		text, err := c.bytes()
		if err != nil {
			return dst, err
		}
		p.Text = string(text)
		dst = append(dst, p)
	}
	if c.len() != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes after %d posts", ErrCorrupt, c.len(), n)
	}
	return dst, nil
}

// AppendEmissions decodes a KindEmissions body, appending onto dst.
func AppendEmissions(dst []Emission, frameBody []byte) ([]Emission, error) {
	c := body{frameBody}
	dst, err := appendEmissionRecords(dst, &c)
	if err != nil {
		return dst, err
	}
	if c.len() != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes after emissions", ErrCorrupt, c.len())
	}
	return dst, nil
}

// DecodeTopK decodes a KindTopK body into the view version, its size k and
// the visible items in rank order.
func DecodeTopK(frameBody []byte) (version uint64, k int, es []Emission, err error) {
	c := body{frameBody}
	if version, err = c.uvarint(); err != nil {
		return 0, 0, nil, err
	}
	kraw, err := c.uvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	if kraw > uint64(MaxFramePayload) {
		return 0, 0, nil, fmt.Errorf("%w: absurd top-k size %d", ErrCorrupt, kraw)
	}
	k = int(kraw)
	if es, err = appendEmissionRecords(nil, &c); err != nil {
		return 0, 0, nil, err
	}
	if c.len() != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes after top-k items", ErrCorrupt, c.len())
	}
	return version, k, es, nil
}

// appendEmissionRecords decodes the shared emission batch body (count,
// then per-emission records) from c, appending onto dst.
func appendEmissionRecords(dst []Emission, c *body) ([]Emission, error) {
	n, err := c.count(minEmissionBytes)
	if err != nil {
		return dst, err
	}
	if cap(dst)-len(dst) < n {
		dst = append(make([]Emission, 0, len(dst)+n), dst...)
	}
	for i := 0; i < n; i++ {
		var em Emission
		seq, err := c.uvarint()
		if err != nil {
			return dst, err
		}
		em.Seq = int64(seq)
		id, err := c.uvarint()
		if err != nil {
			return dst, err
		}
		em.PostID = unzigzag(id)
		if em.Time, err = c.float64(); err != nil {
			return dst, err
		}
		text, err := c.bytes()
		if err != nil {
			return dst, err
		}
		em.Text = string(text)
		topics, err := c.count(1)
		if err != nil {
			return dst, err
		}
		if topics > 0 {
			em.Topics = make([]string, topics)
			for j := 0; j < topics; j++ {
				tb, err := c.bytes()
				if err != nil {
					return dst, err
				}
				em.Topics[j] = string(tb)
			}
		}
		if em.EmitAt, err = c.float64(); err != nil {
			return dst, err
		}
		dst = append(dst, em)
	}
	return dst, nil
}

// AppendLabeledPosts decodes a KindLabeledPosts body, appending onto dst
// and interning the batch's dictionary delta into dict. Label ids decode
// strictly ascending per post (the gap coding enforces it) and must fall
// inside the cumulative dictionary.
func AppendLabeledPosts(dst []core.Post, frameBody []byte, dict *core.Dictionary) ([]core.Post, error) {
	c := body{frameBody}
	newNames, err := c.count(1)
	if err != nil {
		return dst, err
	}
	for i := 0; i < newNames; i++ {
		name, err := c.bytes()
		if err != nil {
			return dst, err
		}
		want := core.Label(dict.Len())
		if got := dict.Intern(string(name)); got != want {
			return dst, fmt.Errorf("%w: dictionary delta re-interns %q (id %d, expected %d)", ErrCorrupt, name, got, want)
		}
	}
	n, err := c.count(minLabeledPostBytes)
	if err != nil {
		return dst, err
	}
	if cap(dst)-len(dst) < n {
		dst = append(make([]core.Post, 0, len(dst)+n), dst...)
	}
	for i := 0; i < n; i++ {
		var p core.Post
		id, err := c.uvarint()
		if err != nil {
			return dst, err
		}
		p.ID = unzigzag(id)
		if p.Value, err = c.float64(); err != nil {
			return dst, err
		}
		nl, err := c.count(1)
		if err != nil {
			return dst, err
		}
		if nl > 0 {
			p.Labels = make([]core.Label, nl)
			var cur uint64
			for j := 0; j < nl; j++ {
				v, err := c.uvarint()
				if err != nil {
					return dst, err
				}
				if j == 0 {
					cur = v
				} else {
					if v == 0 {
						return dst, fmt.Errorf("%w: zero label gap (duplicate label)", ErrCorrupt)
					}
					cur += v
				}
				if cur >= uint64(dict.Len()) {
					return dst, fmt.Errorf("%w: label id %d outside dictionary (len %d)", ErrCorrupt, cur, dict.Len())
				}
				p.Labels[j] = core.Label(cur)
			}
		}
		dst = append(dst, p)
	}
	if c.len() != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes after %d posts", ErrCorrupt, c.len(), n)
	}
	return dst, nil
}

// ---------------------------------------------------------------------------
// Pooled stream batches

// StreamBatch is a pooled carrier for decoded ingest posts.
type StreamBatch struct {
	Posts []StreamPost
}

var streamBatchPool = sync.Pool{New: func() any { return new(StreamBatch) }}

// GetStreamBatch fetches a pooled batch with Posts reset to length 0.
func GetStreamBatch() *StreamBatch { return streamBatchPool.Get().(*StreamBatch) }

// Release clears the batch (dropping its string references so pooled
// memory does not pin post texts) and returns it to the pool.
func (b *StreamBatch) Release() {
	for i := range b.Posts {
		b.Posts[i] = StreamPost{}
	}
	b.Posts = b.Posts[:0]
	if cap(b.Posts) > 1<<17 {
		b.Posts = nil
	}
	streamBatchPool.Put(b)
}

// ---------------------------------------------------------------------------
// File I/O: .mqdw streams of labeled-post frames

// SniffBinary reports whether the next bytes of br are a binary frame
// stream, without consuming them. An empty or short stream sniffs false.
func SniffBinary(br *bufio.Reader) bool {
	head, err := br.Peek(2)
	return err == nil && head[0] == magic0 && head[1] == magic1
}

// BinaryWriter streams core posts as KindLabeledPosts frames with
// per-batch label-dictionary deltas — the .mqdw file writer. Posts are
// buffered into frames of BatchSize; call Flush before closing the file.
type BinaryWriter struct {
	// BatchSize is the posts-per-frame cutoff (default 512).
	BatchSize int
	// CompressThreshold is the per-frame compression cutoff in bytes
	// (default DefaultCompressThreshold; negative disables).
	CompressThreshold int

	w    *bufio.Writer
	dict *core.Dictionary
	sent int // dictionary prefix already emitted
	enc  Encoder

	// Buffered batch, columnar so caller-owned label slices are copied.
	ids    []int64
	vals   []float64
	counts []int
	arena  []core.Label
	posts  []core.Post // rebuilt views into arena at flush time
}

// NewBinaryWriter wraps w; label names come from dict, which may already
// hold labels (they are emitted in the first frame's delta).
func NewBinaryWriter(w io.Writer, dict *core.Dictionary) *BinaryWriter {
	return &BinaryWriter{
		BatchSize:         512,
		CompressThreshold: DefaultCompressThreshold,
		w:                 bufio.NewWriter(w),
		dict:              dict,
	}
}

// Write buffers one post, flushing a frame when the batch fills.
func (bw *BinaryWriter) Write(p core.Post) error {
	bw.ids = append(bw.ids, p.ID)
	bw.vals = append(bw.vals, p.Value)
	bw.counts = append(bw.counts, len(p.Labels))
	bw.arena = append(bw.arena, p.Labels...)
	if len(bw.ids) >= bw.BatchSize {
		return bw.flushBatch()
	}
	return nil
}

// WriteBatch buffers a batch of posts; frames still cut at BatchSize.
func (bw *BinaryWriter) WriteBatch(posts []core.Post) error {
	for _, p := range posts {
		if err := bw.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// Flush emits any buffered posts as a final frame and drains the writer;
// call before exiting.
func (bw *BinaryWriter) Flush() error {
	if len(bw.ids) > 0 {
		if err := bw.flushBatch(); err != nil {
			return err
		}
	}
	return bw.w.Flush()
}

func (bw *BinaryWriter) flushBatch() error {
	bw.posts = bw.posts[:0]
	off := 0
	for i := range bw.ids {
		n := bw.counts[i]
		bw.posts = append(bw.posts, core.Post{
			ID:     bw.ids[i],
			Value:  bw.vals[i],
			Labels: bw.arena[off : off+n],
		})
		off += n
	}
	newNames := bw.dict.Names()[bw.sent:]
	frame, err := bw.enc.EncodeLabeledPosts(bw.posts, newNames, bw.CompressThreshold)
	if err != nil {
		return err
	}
	bw.sent = bw.dict.Len()
	bw.ids, bw.vals, bw.counts, bw.arena = bw.ids[:0], bw.vals[:0], bw.counts[:0], bw.arena[:0]
	_, err = bw.w.Write(frame)
	return err
}

// BinaryReader streams core posts back out of a .mqdw frame stream,
// interning dictionary deltas into dict as frames arrive.
type BinaryReader struct {
	r    io.Reader
	dict *core.Dictionary
	d    Decoder
}

// NewBinaryReader wraps r (buffer it for files); labels intern into dict.
func NewBinaryReader(r io.Reader, dict *core.Dictionary) *BinaryReader {
	return &BinaryReader{r: r, dict: dict}
}

// ReadBatch decodes the next frame's posts. The returned slice is owned by
// the caller. io.EOF signals a clean end of stream.
func (br *BinaryReader) ReadBatch() ([]core.Post, error) {
	kind, frameBody, err := br.d.ReadFrame(br.r)
	if err != nil {
		return nil, err
	}
	if kind != KindLabeledPosts {
		return nil, fmt.Errorf("%w: frame kind 0x%02x, want labeled posts", ErrCorrupt, kind)
	}
	return AppendLabeledPosts(nil, frameBody, br.dict)
}

// WriteStreamPosts frames posts (id, time, text) in batches of batchSize
// (≤ 0 means 512) — the .mqdw tweet-stream shape mqdp-datagen emits.
func WriteStreamPosts(w io.Writer, posts []StreamPost, batchSize, compressThreshold int) error {
	if batchSize <= 0 {
		batchSize = 512
	}
	bw := bufio.NewWriter(w)
	enc := GetEncoder()
	defer PutEncoder(enc)
	for len(posts) > 0 {
		n := batchSize
		if n > len(posts) {
			n = len(posts)
		}
		if _, err := bw.Write(enc.EncodeStreamPosts(posts[:n], compressThreshold)); err != nil {
			return err
		}
		posts = posts[n:]
	}
	return bw.Flush()
}

// ReadStreamPosts decodes a stream of KindStreamPosts frames until EOF.
func ReadStreamPosts(r io.Reader) ([]StreamPost, error) {
	d := GetDecoder()
	defer PutDecoder(d)
	var posts []StreamPost
	for {
		kind, frameBody, err := d.ReadFrame(r)
		if err == io.EOF {
			return posts, nil
		}
		if err != nil {
			return nil, err
		}
		if kind != KindStreamPosts {
			return nil, fmt.Errorf("%w: frame kind 0x%02x, want stream posts", ErrCorrupt, kind)
		}
		if posts, err = AppendStreamPosts(posts, frameBody); err != nil {
			return nil, err
		}
	}
}
