package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mqdp/internal/core"
)

func TestStreamPostsRoundTrip(t *testing.T) {
	posts := []StreamPost{
		{ID: 1, Time: 0, Text: "obama speaks tonight"},
		{ID: -7, Time: 12.5, Text: ""},
		{ID: math.MaxInt64, Time: -1e300, Text: strings.Repeat("λ", 100)},
	}
	for _, threshold := range []int{-1, 0, 1 << 30} { // always / aggressive / never compress
		enc := GetEncoder()
		frame := append([]byte(nil), enc.EncodeStreamPosts(posts, threshold)...)
		PutEncoder(enc)

		dec := GetDecoder()
		kind, frameBody, err := dec.ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("threshold %d: %v", threshold, err)
		}
		if kind != KindStreamPosts {
			t.Fatalf("kind = 0x%02x", kind)
		}
		got, err := AppendStreamPosts(nil, frameBody)
		PutDecoder(dec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(posts) {
			t.Fatalf("decoded %d posts, want %d", len(got), len(posts))
		}
		for i := range posts {
			if got[i] != posts[i] {
				t.Errorf("post %d = %+v, want %+v", i, got[i], posts[i])
			}
		}
	}
}

func TestEmissionsRoundTrip(t *testing.T) {
	es := []Emission{
		{Seq: 1, PostID: 10, Time: 1.5, Text: "senate votes", Topics: []string{"senate", "bill"}, EmitAt: 2},
		{Seq: 2, PostID: -3, Time: 0, Text: "", Topics: nil, EmitAt: 0},
	}
	enc := GetEncoder()
	frame := append([]byte(nil), enc.EncodeEmissions(es, DefaultCompressThreshold)...)
	PutEncoder(enc)
	dec := GetDecoder()
	defer PutDecoder(dec)
	kind, frameBody, err := dec.ReadFrame(bytes.NewReader(frame))
	if err != nil || kind != KindEmissions {
		t.Fatalf("kind 0x%02x, err %v", kind, err)
	}
	got, err := AppendEmissions(nil, frameBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(es) {
		t.Fatalf("decoded %d, want %d", len(got), len(es))
	}
	for i := range es {
		a, b := got[i], es[i]
		if a.Seq != b.Seq || a.PostID != b.PostID || a.Time != b.Time || a.Text != b.Text || a.EmitAt != b.EmitAt || len(a.Topics) != len(b.Topics) {
			t.Errorf("emission %d = %+v, want %+v", i, a, b)
		}
		for j := range b.Topics {
			if a.Topics[j] != b.Topics[j] {
				t.Errorf("emission %d topic %d = %q", i, j, a.Topics[j])
			}
		}
	}
}

func TestTopKRoundTrip(t *testing.T) {
	es := []Emission{
		{Seq: 9, PostID: 10, Time: 1.5, Text: "senate votes", Topics: []string{"senate", "bill"}, EmitAt: 2},
		{Seq: 4, PostID: 11, Time: 0.5, Text: "obama speaks", Topics: []string{"obama"}, EmitAt: 1},
	}
	enc := GetEncoder()
	frame := append([]byte(nil), enc.EncodeTopK(17, 10, es, DefaultCompressThreshold)...)
	PutEncoder(enc)
	dec := GetDecoder()
	defer PutDecoder(dec)
	kind, frameBody, err := dec.ReadFrame(bytes.NewReader(frame))
	if err != nil || kind != KindTopK {
		t.Fatalf("kind 0x%02x, err %v", kind, err)
	}
	version, k, got, err := DecodeTopK(frameBody)
	if err != nil {
		t.Fatal(err)
	}
	if version != 17 || k != 10 {
		t.Fatalf("version %d k %d, want 17 10", version, k)
	}
	if len(got) != len(es) {
		t.Fatalf("decoded %d items, want %d", len(got), len(es))
	}
	for i := range es {
		a, b := got[i], es[i]
		if a.Seq != b.Seq || a.PostID != b.PostID || a.Time != b.Time || a.Text != b.Text || a.EmitAt != b.EmitAt || len(a.Topics) != len(b.Topics) {
			t.Errorf("item %d = %+v, want %+v", i, a, b)
		}
	}
	// Trailing garbage after the item records is corrupt, not ignored.
	if _, _, _, err := DecodeTopK(append(append([]byte(nil), frameBody...), 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestBinaryFileRoundTrip drives the .mqdw path: multiple frames, a label
// dictionary that grows across batches, and a pre-seeded reader dictionary.
func TestBinaryFileRoundTrip(t *testing.T) {
	var dict core.Dictionary
	rng := rand.New(rand.NewSource(7))
	var in []core.Post
	for i := 0; i < 1000; i++ {
		// Intern labels lazily so deltas land in several frames.
		nl := 1 + rng.Intn(3)
		seen := map[core.Label]bool{}
		var labels []core.Label
		for j := 0; j < nl; j++ {
			l := dict.Intern(fmt.Sprintf("label%d", rng.Intn(5+i/50)))
			if !seen[l] {
				seen[l] = true
				labels = append(labels, l)
			}
		}
		sortLabels(labels)
		in = append(in, core.Post{ID: int64(i), Value: float64(i) / 3, Labels: labels})
	}
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf, &dict)
	bw.BatchSize = 64
	bw.CompressThreshold = 256
	for _, p := range in {
		if err := bw.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	var dict2 core.Dictionary
	out, err := ReadPostsAuto(bytes.NewReader(buf.Bytes()), &dict2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost posts: %d vs %d", len(out), len(in))
	}
	if dict2.Len() != dict.Len() {
		t.Fatalf("dictionary %d labels, want %d", dict2.Len(), dict.Len())
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Value != in[i].Value {
			t.Fatalf("post %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
		if len(out[i].Labels) != len(in[i].Labels) {
			t.Fatalf("post %d labels %v vs %v", i, out[i].Labels, in[i].Labels)
		}
		for j := range in[i].Labels {
			if dict2.Name(out[i].Labels[j]) != dict.Name(in[i].Labels[j]) {
				t.Fatalf("post %d label %d name mismatch", i, j)
			}
		}
	}
}

func sortLabels(ls []core.Label) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// TestReadPostsAutoJSONL checks the sniffer leaves JSONL handling intact.
func TestReadPostsAutoJSONL(t *testing.T) {
	var dict core.Dictionary
	posts, err := ReadPostsAuto(strings.NewReader(`{"id":1,"value":10,"labels":["a"]}`), &dict)
	if err != nil || len(posts) != 1 {
		t.Fatalf("posts = %v, err = %v", posts, err)
	}
	if _, err := ReadPostsAuto(strings.NewReader(""), &dict); err != nil {
		t.Fatalf("empty input: %v", err)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	enc := GetEncoder()
	good := append([]byte(nil), enc.EncodeStreamPosts([]StreamPost{{ID: 1, Time: 2, Text: "x"}}, -1)...)
	PutEncoder(enc)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"bad magic", []byte{0x00, 0x00, 1, 0, 0, 0, 0, 0}, ErrBadMagic},
		{"bad version", []byte{magic0, magic1, 99, 0, 0, 0, 0, 0}, ErrBadVersion},
		{"oversized length", func() []byte {
			f := append([]byte(nil), good...)
			f[4], f[5], f[6], f[7] = 0xff, 0xff, 0xff, 0xff
			return f
		}(), ErrFrameTooLarge},
		{"truncated header", good[:5], ErrTruncated},
		{"truncated payload", good[:len(good)-2], ErrTruncated},
		{"corrupt compressed", []byte{magic0, magic1, FrameVersion, flagCompressed, 4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}, ErrCorrupt},
		{"empty payload", []byte{magic0, magic1, FrameVersion, 0, 0, 0, 0, 0}, ErrCorrupt},
	}
	for _, tc := range cases {
		dec := GetDecoder()
		_, _, err := dec.ReadFrame(bytes.NewReader(tc.data))
		PutDecoder(dec)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDecodeHostileCounts feeds bodies whose counts/lengths claim far more
// records than the payload holds: decode must fail typed without
// allocating proportionally to the claim.
func TestDecodeHostileCounts(t *testing.T) {
	// Claim 2^40 posts in a 12-byte body.
	huge := append(appendUvarintTest(nil, 1<<40), 1, 2, 3)
	if _, err := AppendStreamPosts(nil, huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hostile count: %v", err)
	}
	if _, err := AppendEmissions(nil, huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hostile emission count: %v", err)
	}
	var dict core.Dictionary
	if _, err := AppendLabeledPosts(nil, huge, &dict); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hostile label count: %v", err)
	}
	// One post whose text length overruns the body.
	overrun := appendUvarintTest(nil, 1)          // count = 1
	overrun = append(overrun, 2)                  // id
	overrun = append(overrun, make([]byte, 8)...) // time
	overrun = appendUvarintTest(overrun, 1<<30)   // text len
	if _, err := AppendStreamPosts(nil, overrun); !errors.Is(err, ErrCorrupt) {
		t.Errorf("overrun text: %v", err)
	}
}

func appendUvarintTest(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// TestLabeledDeltaGapCoding rejects unsorted label sets at encode time and
// zero gaps / out-of-dictionary ids at decode time.
func TestLabeledDeltaGapCoding(t *testing.T) {
	var dict core.Dictionary
	dict.Intern("a")
	dict.Intern("b")
	enc := GetEncoder()
	defer PutEncoder(enc)
	if _, err := enc.EncodeLabeledPosts([]core.Post{{ID: 1, Labels: []core.Label{1, 0}}}, nil, -1); err == nil {
		t.Error("unsorted labels encoded")
	}
	if _, err := enc.EncodeLabeledPosts([]core.Post{{ID: 1, Labels: []core.Label{0, 0}}}, nil, -1); err == nil {
		t.Error("duplicate labels encoded")
	}
	// Label id beyond the decoder's dictionary.
	frame, err := enc.EncodeLabeledPosts([]core.Post{{ID: 1, Labels: []core.Label{1}}}, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	var empty core.Dictionary
	dec := GetDecoder()
	defer PutDecoder(dec)
	_, frameBody, _, err := dec.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendLabeledPosts(nil, frameBody, &empty); !errors.Is(err, ErrCorrupt) {
		t.Errorf("out-of-dictionary label: %v", err)
	}
}

// TestStreamDecodeAllocs pins the acceptance bound: decoding a binary
// batch performs ≤ 2 heap allocations per post (in practice ~1, the text
// string) once the pooled scratch is warm.
func TestStreamDecodeAllocs(t *testing.T) {
	const n = 256
	posts := make([]StreamPost, n)
	for i := range posts {
		posts[i] = StreamPost{ID: int64(i), Time: float64(i), Text: "some representative post text body"}
	}
	enc := GetEncoder()
	frame := append([]byte(nil), enc.EncodeStreamPosts(posts, 1<<30)...)
	PutEncoder(enc)

	dec := GetDecoder()
	sb := GetStreamBatch()
	defer PutDecoder(dec)
	defer sb.Release()
	// Warm the scratch to steady state.
	decodeOnce := func() {
		_, frameBody, _, err := dec.DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		var derr error
		sb.Posts, derr = AppendStreamPosts(sb.Posts[:0], frameBody)
		if derr != nil || len(sb.Posts) != n {
			t.Fatalf("decode: %d posts, %v", len(sb.Posts), derr)
		}
	}
	decodeOnce()
	allocs := testing.AllocsPerRun(50, decodeOnce)
	if perPost := allocs / n; perPost > 2 {
		t.Errorf("decode allocates %.2f per post (%.0f total), want ≤ 2", perPost, allocs)
	}
}

// TestReadFrameEOFSemantics distinguishes a clean end of stream from a
// stream cut mid-frame.
func TestReadFrameEOFSemantics(t *testing.T) {
	dec := GetDecoder()
	defer PutDecoder(dec)
	if _, _, err := dec.ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
	enc := GetEncoder()
	frame := append([]byte(nil), enc.EncodeStreamPosts([]StreamPost{{ID: 1, Text: "x"}}, -1)...)
	PutEncoder(enc)
	r := bytes.NewReader(frame[:len(frame)-1])
	if _, _, err := dec.ReadFrame(r); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut mid-frame: %v, want ErrTruncated", err)
	}
}

func TestSniffBinary(t *testing.T) {
	enc := GetEncoder()
	frame := append([]byte(nil), enc.EncodeStreamPosts(nil, -1)...)
	PutEncoder(enc)
	if !SniffBinary(bufio.NewReader(bytes.NewReader(frame))) {
		t.Error("frame not sniffed as binary")
	}
	if SniffBinary(bufio.NewReader(strings.NewReader(`{"id":1}`))) {
		t.Error("JSONL sniffed as binary")
	}
	if SniffBinary(bufio.NewReader(strings.NewReader(""))) {
		t.Error("empty sniffed as binary")
	}
}

func TestWriteReadStreamPosts(t *testing.T) {
	posts := make([]StreamPost, 1500)
	for i := range posts {
		posts[i] = StreamPost{ID: int64(i), Time: float64(i) / 2, Text: fmt.Sprintf("tweet %d", i)}
	}
	var buf bytes.Buffer
	if err := WriteStreamPosts(&buf, posts, 0, DefaultCompressThreshold); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStreamPosts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(posts) {
		t.Fatalf("decoded %d, want %d", len(got), len(posts))
	}
	for i := range posts {
		if got[i] != posts[i] {
			t.Fatalf("post %d = %+v, want %+v", i, got[i], posts[i])
		}
	}
}
