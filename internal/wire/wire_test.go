package wire

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"mqdp/internal/core"
)

func TestReadPostsBasic(t *testing.T) {
	src := `
{"id":1,"value":10,"labels":["obama"]}

{"id":2,"value":20,"labels":["economy","obama","obama"]}
`
	var dict core.Dictionary
	posts, err := ReadPosts(strings.NewReader(src), &dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 2 {
		t.Fatalf("posts = %d", len(posts))
	}
	if dict.Len() != 2 {
		t.Errorf("dict = %d labels", dict.Len())
	}
	if len(posts[1].Labels) != 2 {
		t.Errorf("post 2 labels = %v (want deduplicated pair)", posts[1].Labels)
	}
	for i := 1; i < len(posts[1].Labels); i++ {
		if posts[1].Labels[i] <= posts[1].Labels[i-1] {
			t.Error("labels not sorted")
		}
	}
}

func TestReadPostsErrors(t *testing.T) {
	var dict core.Dictionary
	if _, err := ReadPosts(strings.NewReader("{bad json"), &dict); err == nil {
		t.Error("bad json accepted")
	}
	if posts, err := ReadPosts(strings.NewReader(""), &dict); err != nil || posts != nil {
		t.Errorf("empty input = %v, %v", posts, err)
	}
}

func TestRoundTrip(t *testing.T) {
	var dict core.Dictionary
	a, b := dict.Intern("alpha"), dict.Intern("beta")
	in := []core.Post{
		{ID: 1, Value: 1.5, Labels: []core.Label{a}},
		{ID: 2, Value: 2.5, Labels: []core.Label{a, b}},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, &dict)
	for _, p := range in {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var dict2 core.Dictionary
	out, err := ReadPosts(&buf, &dict2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost posts: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Value != in[i].Value || len(out[i].Labels) != len(in[i].Labels) {
			t.Errorf("post %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
	if dict2.Name(out[1].Labels[1]) != "beta" {
		t.Error("label names lost in round trip")
	}
}

func TestReadPostsSharedDictionary(t *testing.T) {
	var dict core.Dictionary
	pre := dict.Intern("existing")
	posts, err := ReadPosts(strings.NewReader(`{"id":1,"value":0,"labels":["existing","new"]}`), &dict)
	if err != nil {
		t.Fatal(err)
	}
	if posts[0].Labels[0] != pre {
		t.Error("existing label not reused")
	}
	if dict.Len() != 2 {
		t.Errorf("dict grew to %d", dict.Len())
	}
}

// TestReadPostsLineTooLong pins the satellite fix: a line exceeding
// maxLineBytes must surface bufio.ErrTooLong wrapped with the line number,
// not the scanner's bare "token too long".
func TestReadPostsLineTooLong(t *testing.T) {
	long := `{"id":3,"value":1,"labels":["` + strings.Repeat("x", maxLineBytes) + `"]}`
	src := `{"id":1,"value":1,"labels":["a"]}` + "\n" +
		`{"id":2,"value":2,"labels":["b"]}` + "\n" + long
	var dict core.Dictionary
	_, err := ReadPosts(strings.NewReader(src), &dict)
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("err = %v, want bufio.ErrTooLong in chain", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %q, want the failing line number (line 3)", err)
	}
}
