// Package wire defines the JSON-lines interchange format shared by the
// command-line tools: one post per line with a dimension value and string
// label names, interned to dense core labels on read.
//
//	{"id": 17, "value": 1370000000, "labels": ["obama", "economy"]}
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mqdp/internal/core"
)

// Post is the JSONL schema.
type Post struct {
	ID     int64    `json:"id"`
	Value  float64  `json:"value"`
	Labels []string `json:"labels"`
}

// maxLineBytes bounds a single input line.
const maxLineBytes = 1 << 20

// ReadPosts decodes JSONL posts from r, interning label names into dict
// (which may already hold labels). Blank lines are skipped. Labels on each
// post are sorted and deduplicated, as core requires.
func ReadPosts(r io.Reader, dict *core.Dictionary) ([]core.Post, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var posts []core.Post
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		p, err := decodePost(line, dict)
		if err != nil {
			return nil, fmt.Errorf("wire: line %d: %w", lineNo, err)
		}
		posts = append(posts, p)
	}
	if err := sc.Err(); err != nil {
		// Scanner errors (e.g. bufio.ErrTooLong on a line over maxLineBytes)
		// happen on the line after the last successful Scan: report it like
		// any other per-line decode error instead of a bare bufio message.
		return nil, fmt.Errorf("wire: line %d: %w", lineNo+1, err)
	}
	return posts, nil
}

// ReadPostsAuto reads posts from r in either interchange format, sniffing
// the first bytes: binary .mqdw frames (magic 0x8D 0x51) or JSONL.
func ReadPostsAuto(r io.Reader, dict *core.Dictionary) ([]core.Post, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	if !SniffBinary(br) {
		return ReadPosts(br, dict)
	}
	rd := NewBinaryReader(br, dict)
	var posts []core.Post
	for {
		batch, err := rd.ReadBatch()
		if err == io.EOF {
			return posts, nil
		}
		if err != nil {
			return nil, err
		}
		posts = append(posts, batch...)
	}
}

func decodePost(line string, dict *core.Dictionary) (core.Post, error) {
	var wp Post
	if err := json.Unmarshal([]byte(line), &wp); err != nil {
		return core.Post{}, err
	}
	labels := make([]core.Label, len(wp.Labels))
	for i, name := range wp.Labels {
		labels[i] = dict.Intern(name)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	dedup := labels[:0]
	for i, a := range labels {
		if i == 0 || labels[i-1] != a {
			dedup = append(dedup, a)
		}
	}
	return core.Post{ID: wp.ID, Value: wp.Value, Labels: dedup}, nil
}

// Writer streams posts back out as JSONL.
type Writer struct {
	w    *bufio.Writer
	enc  *json.Encoder
	dict *core.Dictionary
}

// NewWriter wraps w; label names come from dict.
func NewWriter(w io.Writer, dict *core.Dictionary) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw), dict: dict}
}

// Write emits one post.
func (wr *Writer) Write(p core.Post) error {
	names := make([]string, len(p.Labels))
	for i, a := range p.Labels {
		names[i] = wr.dict.Name(a)
	}
	return wr.enc.Encode(Post{ID: p.ID, Value: p.Value, Labels: names})
}

// Flush drains the buffer; call before exiting.
func (wr *Writer) Flush() error { return wr.w.Flush() }
