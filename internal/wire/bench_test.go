package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// benchStreamPosts builds a production-shaped ingest batch.
func benchStreamPosts(n int) []StreamPost {
	posts := make([]StreamPost, n)
	for i := range posts {
		posts[i] = StreamPost{
			ID:   int64(i + 1),
			Time: float64(i) / 4,
			Text: fmt.Sprintf("post %d: senate votes on the bill while markets react to the announcement", i),
		}
	}
	return posts
}

// jsonStreamPost mirrors the server's JSON ingest schema for the
// format-comparison benchmarks.
type jsonStreamPost struct {
	ID   int64   `json:"id"`
	Time float64 `json:"time"`
	Text string  `json:"text"`
}

func BenchmarkWireEncodeJSON(b *testing.B) {
	posts := benchStreamPosts(512)
	jp := make([]jsonStreamPost, len(posts))
	for i, p := range posts {
		jp[i] = jsonStreamPost(p)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(jp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeJSON(b *testing.B) {
	posts := benchStreamPosts(512)
	jp := make([]jsonStreamPost, len(posts))
	for i, p := range posts {
		jp[i] = jsonStreamPost(p)
	}
	data, err := json.Marshal(jp)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]jsonStreamPost, 0, len(posts))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out = out[:0]
		if err := json.Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeBinary(b *testing.B) {
	for _, mode := range []struct {
		name      string
		threshold int
	}{{"raw", 1 << 30}, {"compressed", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			posts := benchStreamPosts(512)
			enc := GetEncoder()
			defer PutEncoder(enc)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = enc.EncodeStreamPosts(posts, mode.threshold)
			}
		})
	}
}

func BenchmarkWireDecodeBinary(b *testing.B) {
	for _, mode := range []struct {
		name      string
		threshold int
	}{{"raw", 1 << 30}, {"compressed", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			posts := benchStreamPosts(512)
			enc := GetEncoder()
			frame := append([]byte(nil), enc.EncodeStreamPosts(posts, mode.threshold)...)
			PutEncoder(enc)
			dec := GetDecoder()
			sb := GetStreamBatch()
			defer PutDecoder(dec)
			defer sb.Release()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, frameBody, _, err := dec.DecodeFrame(frame)
				if err != nil {
					b.Fatal(err)
				}
				sb.Posts, err = AppendStreamPosts(sb.Posts[:0], frameBody)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireReadFrame(b *testing.B) {
	posts := benchStreamPosts(512)
	enc := GetEncoder()
	frame := append([]byte(nil), enc.EncodeStreamPosts(posts, 1<<30)...)
	PutEncoder(enc)
	dec := GetDecoder()
	defer PutDecoder(dec)
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, _, err := dec.ReadFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}
