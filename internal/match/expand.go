package match

import (
	"errors"
	"math"
	"sort"

	"mqdp/internal/textutil"
)

// Expander implements §9's "context expansion" direction for short posts:
// topic keyword sets are enriched with words that strongly co-occur with the
// existing keywords in a background corpus, measured by pointwise mutual
// information at the document level,
//
//	PMI(seed, w) = log( P(seed, w) / (P(seed) · P(w)) ).
//
// Tracking is seeded: only co-occurrences between registered seed words and
// other words are counted, which keeps memory proportional to
// |seeds| × |vocabulary seen with them| instead of |vocabulary|².
type Expander struct {
	seeds map[string]struct{}
	// docFreq[w] = documents containing w.
	docFreq map[string]int
	// coFreq[seed][w] = documents containing both.
	coFreq map[string]map[string]int
	docs   int
}

// ErrNoSeeds reports an expander without seed words.
var ErrNoSeeds = errors.New("match: expander needs seed words")

// NewExpander tracks co-occurrence against the given seed words (typically
// the union of all topic keywords).
func NewExpander(seeds []string) (*Expander, error) {
	if len(seeds) == 0 {
		return nil, ErrNoSeeds
	}
	e := &Expander{
		seeds:   make(map[string]struct{}, len(seeds)),
		docFreq: make(map[string]int),
		coFreq:  make(map[string]map[string]int),
	}
	for _, s := range seeds {
		if s == "" {
			continue
		}
		e.seeds[s] = struct{}{}
		e.coFreq[s] = make(map[string]int)
	}
	if len(e.seeds) == 0 {
		return nil, ErrNoSeeds
	}
	return e, nil
}

// ObserveText tokenizes one corpus document and records co-occurrences.
func (e *Expander) ObserveText(text string) {
	e.Observe(textutil.ContentWords(text))
}

// Observe records one pre-tokenized document.
func (e *Expander) Observe(words []string) {
	if len(words) == 0 {
		return
	}
	distinct := make(map[string]struct{}, len(words))
	for _, w := range words {
		distinct[w] = struct{}{}
	}
	e.docs++
	var present []string
	for w := range distinct {
		e.docFreq[w]++
		if _, ok := e.seeds[w]; ok {
			present = append(present, w)
		}
	}
	for _, s := range present {
		co := e.coFreq[s]
		for w := range distinct {
			if w != s {
				co[w]++
			}
		}
	}
}

// Docs reports how many documents were observed.
func (e *Expander) Docs() int { return e.docs }

// Collocate is one expansion candidate.
type Collocate struct {
	Word  string
	PMI   float64
	Joint int // documents containing both the seed and the word
	// Score ranks candidates: PMI damped by joint support,
	// PMI · log(1+joint) — the standard fix for plain PMI's bias toward
	// rare one-off pairs.
	Score float64
}

// Collocates returns the top-n collocates of seed by support-damped PMI,
// requiring at least minCount joint documents.
func (e *Expander) Collocates(seed string, n, minCount int) []Collocate {
	co, ok := e.coFreq[seed]
	if !ok || e.docs == 0 || n <= 0 {
		return nil
	}
	seedDF := e.docFreq[seed]
	if seedDF == 0 {
		return nil
	}
	var out []Collocate
	for w, joint := range co {
		if joint < minCount {
			continue
		}
		pmi := math.Log(float64(joint) * float64(e.docs) / (float64(seedDF) * float64(e.docFreq[w])))
		if pmi <= 0 {
			continue
		}
		out = append(out, Collocate{
			Word:  w,
			PMI:   pmi,
			Joint: joint,
			Score: pmi * math.Log1p(float64(joint)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Word < out[j].Word
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Expand returns a copy of t with up to extra new keywords: the strongest
// collocates (PMI > minPMI, ≥ minCount joint docs) of the topic's existing
// keywords that are not already keywords. New keywords get the weight of the
// collocate's PMI normalized into (0, 1].
func (e *Expander) Expand(t Topic, extra, minCount int, minPMI float64) Topic {
	if extra <= 0 {
		return t
	}
	existing := make(map[string]struct{}, len(t.Keywords))
	for _, kw := range t.Keywords {
		existing[kw.Text] = struct{}{}
	}
	bestScore := map[string]float64{}
	for _, kw := range t.Keywords {
		for _, c := range e.Collocates(kw.Text, extra*4, minCount) {
			if _, dup := existing[c.Word]; dup {
				continue
			}
			if c.PMI > minPMI && c.Score > bestScore[c.Word] {
				bestScore[c.Word] = c.Score
			}
		}
	}
	cands := make([]Collocate, 0, len(bestScore))
	maxScore := 0.0
	for w, s := range bestScore {
		cands = append(cands, Collocate{Word: w, Score: s})
		if s > maxScore {
			maxScore = s
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Word < cands[j].Word
	})
	if len(cands) > extra {
		cands = cands[:extra]
	}
	out := Topic{Name: t.Name, Keywords: append([]Keyword(nil), t.Keywords...)}
	for _, c := range cands {
		out.Keywords = append(out.Keywords, Keyword{Text: c.Word, Weight: c.Score / maxScore})
	}
	return out
}
