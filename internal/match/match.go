// Package match implements the posts/label matching module of the paper's
// Figure 1 architecture: user queries are topics (weighted keyword sets,
// e.g. from LDA), and a post matches a topic when it contains at least one
// of the topic's keywords — the matching rule of §7.1. The matcher projects
// raw posts into core.Post values on a chosen diversity dimension.
package match

import (
	"errors"
	"fmt"
	"sort"

	"mqdp/internal/core"
	"mqdp/internal/index"
	"mqdp/internal/lda"
	"mqdp/internal/sentiment"
	"mqdp/internal/textutil"
)

// Keyword is one weighted topic keyword.
type Keyword struct {
	Text   string
	Weight float64
}

// Topic is a user query: a named, weighted keyword set.
type Topic struct {
	Name     string
	Keywords []Keyword
}

// Dimension selects the diversity dimension a matched post is projected on.
type Dimension int

// Supported dimensions.
const (
	// ByTime uses the post timestamp (the paper's default).
	ByTime Dimension = iota
	// BySentiment uses lexicon polarity in [-1, 1].
	BySentiment
)

// Matcher matches post text against a fixed topic set. It is immutable
// after construction and safe for concurrent use.
type Matcher struct {
	topics []Topic
	byWord map[string][]weightedLabel // keyword -> topics containing it
}

// weightedLabel pairs a topic with the weight of one of its keywords.
type weightedLabel struct {
	label  core.Label
	weight float64
}

// ErrNoTopics is returned when constructing a matcher without topics.
var ErrNoTopics = errors.New("match: no topics")

// NewMatcher builds a matcher where topic i answers to label i.
func NewMatcher(topics []Topic) (*Matcher, error) {
	if len(topics) == 0 {
		return nil, ErrNoTopics
	}
	m := &Matcher{topics: topics, byWord: make(map[string][]weightedLabel)}
	for ti, t := range topics {
		if len(t.Keywords) == 0 {
			return nil, fmt.Errorf("match: topic %d (%q) has no keywords", ti, t.Name)
		}
		seen := map[string]bool{}
		for _, kw := range t.Keywords {
			if kw.Text == "" || seen[kw.Text] {
				continue
			}
			seen[kw.Text] = true
			m.byWord[kw.Text] = append(m.byWord[kw.Text], weightedLabel{label: core.Label(ti), weight: kw.Weight})
		}
	}
	return m, nil
}

// NumTopics reports the topic (label) count.
func (m *Matcher) NumTopics() int { return len(m.topics) }

// Topic returns the topic behind a label.
func (m *Matcher) Topic(a core.Label) Topic { return m.topics[a] }

// Match tokenizes text and returns the labels of every topic with at least
// one keyword present, sorted and deduplicated.
func (m *Matcher) Match(text string) []core.Label {
	var buf [32]textutil.Token
	return m.MatchTokens(textutil.AppendTokens(buf[:0], text))
}

// MatchWords is Match over pre-tokenized words.
func (m *Matcher) MatchWords(words []string) []core.Label {
	var labels []core.Label
	for _, w := range words {
		for _, wl := range m.byWord[w] {
			labels = append(labels, wl.label)
		}
	}
	return dedupLabels(labels)
}

// MatchTokens is Match over a pre-computed tokenization — the tokenize-once
// path shared with the inverted index writer and the sentiment scorer.
func (m *Matcher) MatchTokens(tokens []textutil.Token) []core.Label {
	var labels []core.Label
	for _, tok := range tokens {
		for _, wl := range m.byWord[tok.Text] {
			labels = append(labels, wl.label)
		}
	}
	return dedupLabels(labels)
}

// dedupLabels sorts labels and removes duplicates in place; empty in, nil out.
func dedupLabels(labels []core.Label) []core.Label {
	if len(labels) == 0 {
		return nil
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	out := labels[:0]
	for i, a := range labels {
		if i == 0 || labels[i-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// Score is a topic-relevance score for one text.
type Score struct {
	Label core.Label
	// Value is the sum of the weights of the topic's distinct keywords
	// present in the text.
	Value float64
}

// MatchScores returns per-topic relevance scores (distinct matched keyword
// weights summed), sorted by label. Only topics with at least one match
// appear.
func (m *Matcher) MatchScores(words []string) []Score {
	type hit struct {
		word  string
		label core.Label
	}
	seen := map[hit]struct{}{}
	scores := map[core.Label]float64{}
	for _, w := range words {
		for _, wl := range m.byWord[w] {
			h := hit{word: w, label: wl.label}
			if _, dup := seen[h]; dup {
				continue // a repeated keyword counts once
			}
			seen[h] = struct{}{}
			scores[wl.label] += wl.weight
		}
	}
	out := make([]Score, 0, len(scores))
	for a, v := range scores {
		out = append(out, Score{Label: a, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// MatchThreshold returns the labels whose relevance score reaches theta —
// a stricter relevance rule than the paper's "contains at least one keyword"
// (which is the special case theta → 0 with unit weights).
func (m *Matcher) MatchThreshold(text string, theta float64) []core.Label {
	var out []core.Label
	for _, s := range m.MatchScores(textutil.Words(text)) {
		if s.Value >= theta {
			out = append(out, s.Label)
		}
	}
	return out
}

// PostFromDoc projects doc onto dim, returning false when no topic matches
// (such posts are irrelevant to every query and never enter MQDP).
func (m *Matcher) PostFromDoc(doc index.Doc, dim Dimension) (core.Post, bool) {
	var buf [32]textutil.Token
	return m.PostFromTokens(doc, textutil.AppendTokens(buf[:0], doc.Text), dim)
}

// PostFromTokens is PostFromDoc over a pre-computed tokenization of
// doc.Text: one tokenizer pass feeds both the topic match and, on the
// sentiment dimension, the polarity score.
func (m *Matcher) PostFromTokens(doc index.Doc, tokens []textutil.Token, dim Dimension) (core.Post, bool) {
	labels := m.MatchTokens(tokens)
	if len(labels) == 0 {
		return core.Post{}, false
	}
	value := doc.Time
	if dim == BySentiment {
		value = sentiment.ScoreTokens(doc.Text, tokens)
	}
	return core.Post{ID: doc.ID, Value: value, Labels: labels}, true
}

// FromIndex retrieves every document in [lo, hi] matching at least one topic
// from ix (via boolean-OR keyword queries, the paper's "search query against
// an inverted index" input path) and projects the matches onto dim. Each
// retrieved document is tokenized exactly once, into a reused buffer.
func (m *Matcher) FromIndex(ix *index.Index, dim Dimension, lo, hi float64) []core.Post {
	var terms []string
	for w := range m.byWord {
		terms = append(terms, w)
	}
	sort.Strings(terms) // deterministic query order
	positions := ix.AnyQuery(terms, lo, hi)
	posts := make([]core.Post, 0, len(positions))
	var buf []textutil.Token
	for _, pos := range positions {
		doc := ix.Doc(pos)
		buf = textutil.AppendTokens(buf[:0], doc.Text)
		if p, ok := m.PostFromTokens(doc, buf, dim); ok {
			posts = append(posts, p)
		}
	}
	return posts
}

// IndexBatch ingests docs into ix and projects the topic matches onto dim in
// the same pass — the tokenize-once batch path: each document is tokenized
// exactly once and the token slice is shared between the index writer
// (index.AddTokens) and the topic matcher. It returns the matched posts and
// the number of documents indexed; on a time-order violation ingestion stops
// there, the accepted prefix stays indexed, and the error is returned.
func (m *Matcher) IndexBatch(ix *index.Index, docs []index.Doc, dim Dimension) ([]core.Post, int, error) {
	var posts []core.Post
	var buf []textutil.Token
	for i, doc := range docs {
		buf = textutil.AppendTokens(buf[:0], doc.Text)
		if err := ix.AddTokens(doc, buf); err != nil {
			return posts, i, err
		}
		if p, ok := m.PostFromTokens(doc, buf, dim); ok {
			posts = append(posts, p)
		}
	}
	return posts, len(docs), nil
}

// FromLDA converts trained LDA topics into matcher queries: topic k becomes
// a Topic named by namer (or "topic-k") with its top keywordsPerTopic
// weighted keywords — the paper's §7.1 query-generation step.
func FromLDA(model *lda.Model, topicIDs []int, keywordsPerTopic int, namer func(k int) string) ([]Topic, error) {
	if len(topicIDs) == 0 {
		return nil, ErrNoTopics
	}
	topics := make([]Topic, 0, len(topicIDs))
	for _, k := range topicIDs {
		kws := model.TopKeywords(k, keywordsPerTopic)
		if len(kws) == 0 {
			return nil, fmt.Errorf("match: LDA topic %d has no keywords", k)
		}
		name := fmt.Sprintf("topic-%d", k)
		if namer != nil {
			name = namer(k)
		}
		t := Topic{Name: name}
		for _, kw := range kws {
			t.Keywords = append(t.Keywords, Keyword{Text: kw.Word, Weight: kw.Weight})
		}
		topics = append(topics, t)
	}
	return topics, nil
}
