// Package match implements the posts/label matching module of the paper's
// Figure 1 architecture: user queries are topics (weighted keyword sets,
// e.g. from LDA), and a post matches a topic when it contains at least one
// of the topic's keywords — the matching rule of §7.1. The matcher projects
// raw posts into core.Post values on a chosen diversity dimension.
package match

import (
	"errors"
	"fmt"
	"sort"

	"mqdp/internal/core"
	"mqdp/internal/index"
	"mqdp/internal/lda"
	"mqdp/internal/route"
	"mqdp/internal/sentiment"
	"mqdp/internal/textutil"
)

// Keyword is one weighted topic keyword.
type Keyword struct {
	Text   string
	Weight float64
}

// Topic is a user query: a named, weighted keyword set.
type Topic struct {
	Name     string
	Keywords []Keyword
}

// Dimension selects the diversity dimension a matched post is projected on.
type Dimension int

// Supported dimensions.
const (
	// ByTime uses the post timestamp (the paper's default).
	ByTime Dimension = iota
	// BySentiment uses lexicon polarity in [-1, 1].
	BySentiment
)

// Matcher matches post text against a fixed topic set. It is immutable
// after construction (and after the optional CompileSymbols) and safe for
// concurrent use.
type Matcher struct {
	topics []Topic
	byWord map[string][]weightedLabel // keyword -> topics containing it
	// bySym is the symbol-compiled form of byWord (see CompileSymbols):
	// matching compares dense uint32 symbols instead of hashing strings.
	bySym map[uint32][]weightedLabel
}

// weightedLabel pairs a topic with the weight of one of its keywords.
type weightedLabel struct {
	label  core.Label
	weight float64
}

// ErrNoTopics is returned when constructing a matcher without topics.
var ErrNoTopics = errors.New("match: no topics")

// NewMatcher builds a matcher where topic i answers to label i.
func NewMatcher(topics []Topic) (*Matcher, error) {
	if len(topics) == 0 {
		return nil, ErrNoTopics
	}
	m := &Matcher{topics: topics, byWord: make(map[string][]weightedLabel)}
	for ti, t := range topics {
		if len(t.Keywords) == 0 {
			return nil, fmt.Errorf("match: topic %d (%q) has no keywords", ti, t.Name)
		}
		seen := map[string]bool{}
		for _, kw := range t.Keywords {
			if kw.Text == "" || seen[kw.Text] {
				continue
			}
			seen[kw.Text] = true
			m.byWord[kw.Text] = append(m.byWord[kw.Text], weightedLabel{label: core.Label(ti), weight: kw.Weight})
		}
	}
	return m, nil
}

// NumTopics reports the topic (label) count.
func (m *Matcher) NumTopics() int { return len(m.topics) }

// Topic returns the topic behind a label.
func (m *Matcher) Topic(a core.Label) Topic { return m.topics[a] }

// Match tokenizes text and returns the labels of every topic with at least
// one keyword present, sorted and deduplicated.
func (m *Matcher) Match(text string) []core.Label {
	var buf [32]textutil.Token
	return m.MatchTokens(textutil.AppendTokens(buf[:0], text))
}

// MatchWords is Match over pre-tokenized words.
func (m *Matcher) MatchWords(words []string) []core.Label {
	return m.MatchWordsInto(nil, words)
}

// MatchWordsInto is MatchWords appending into a caller-provided scratch
// slice (reusing its capacity): zero allocations when no keyword hits,
// and none beyond dst growth when some do. The result aliases dst, so
// callers that hand labels to a retaining consumer must copy first.
func (m *Matcher) MatchWordsInto(dst []core.Label, words []string) []core.Label {
	labels := dst[:0]
	for _, w := range words {
		for _, wl := range m.byWord[w] {
			labels = append(labels, wl.label)
		}
	}
	return dedupLabels(labels)
}

// MatchTokens is Match over a pre-computed tokenization — the tokenize-once
// path shared with the inverted index writer and the sentiment scorer.
func (m *Matcher) MatchTokens(tokens []textutil.Token) []core.Label {
	return m.MatchTokensInto(nil, tokens)
}

// MatchTokensInto is MatchTokens with a caller-provided label scratch; see
// MatchWordsInto for the aliasing contract.
func (m *Matcher) MatchTokensInto(dst []core.Label, tokens []textutil.Token) []core.Label {
	labels := dst[:0]
	for _, tok := range tokens {
		for _, wl := range m.byWord[tok.Text] {
			labels = append(labels, wl.label)
		}
	}
	return dedupLabels(labels)
}

// CompileSymbols interns every distinct keyword into t and builds the
// symbol-compiled match table, enabling MatchSymbolsInto: per-post
// matching then compares dense uint32 symbols instead of hashing keyword
// strings. It returns the matcher's distinct keyword symbols, sorted
// ascending — exactly the posting keys a routing index needs. Call once,
// before the matcher is shared across goroutines.
func (m *Matcher) CompileSymbols(t *route.Table) []uint32 {
	words := make([]string, 0, len(m.byWord))
	for w := range m.byWord {
		words = append(words, w)
	}
	sort.Strings(words) // deterministic symbol assignment order
	syms := t.InternAll(make([]uint32, 0, len(words)), words)
	m.bySym = make(map[uint32][]weightedLabel, len(words))
	for i, w := range words {
		m.bySym[syms[i]] = m.byWord[w]
	}
	return route.DedupSyms(syms)
}

// MatchSymbolsInto is MatchWordsInto over symbol-mapped tokens: syms is
// the post's token set resolved through the same route.Table this matcher
// was compiled against (unknown tokens already dropped). Duplicate symbols
// are tolerated — labels are deduplicated regardless. Panics if
// CompileSymbols has not run.
func (m *Matcher) MatchSymbolsInto(dst []core.Label, syms []uint32) []core.Label {
	labels := dst[:0]
	for _, s := range syms {
		for _, wl := range m.bySym[s] {
			labels = append(labels, wl.label)
		}
	}
	return dedupLabels(labels)
}

// dedupLabels sorts labels and removes duplicates in place; empty in, nil
// out. Label lists are per-post tiny, so an allocation-free insertion sort
// replaces sort.Slice (whose closure allocates) and keeps the no-match
// and match paths alloc-free.
func dedupLabels(labels []core.Label) []core.Label {
	if len(labels) == 0 {
		return nil
	}
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j] < labels[j-1]; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
	out := labels[:0]
	for i, a := range labels {
		if i == 0 || labels[i-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// Score is a topic-relevance score for one text.
type Score struct {
	Label core.Label
	// Value is the sum of the weights of the topic's distinct keywords
	// present in the text.
	Value float64
}

// MatchScores returns per-topic relevance scores (distinct matched keyword
// weights summed), sorted by label. Only topics with at least one match
// appear.
func (m *Matcher) MatchScores(words []string) []Score {
	type hit struct {
		word  string
		label core.Label
	}
	seen := map[hit]struct{}{}
	scores := map[core.Label]float64{}
	for _, w := range words {
		for _, wl := range m.byWord[w] {
			h := hit{word: w, label: wl.label}
			if _, dup := seen[h]; dup {
				continue // a repeated keyword counts once
			}
			seen[h] = struct{}{}
			scores[wl.label] += wl.weight
		}
	}
	out := make([]Score, 0, len(scores))
	for a, v := range scores {
		out = append(out, Score{Label: a, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// MatchThreshold returns the labels whose relevance score reaches theta —
// a stricter relevance rule than the paper's "contains at least one keyword"
// (which is the special case theta → 0 with unit weights).
func (m *Matcher) MatchThreshold(text string, theta float64) []core.Label {
	var out []core.Label
	for _, s := range m.MatchScores(textutil.Words(text)) {
		if s.Value >= theta {
			out = append(out, s.Label)
		}
	}
	return out
}

// PostFromDoc projects doc onto dim, returning false when no topic matches
// (such posts are irrelevant to every query and never enter MQDP).
func (m *Matcher) PostFromDoc(doc index.Doc, dim Dimension) (core.Post, bool) {
	var buf [32]textutil.Token
	return m.PostFromTokens(doc, textutil.AppendTokens(buf[:0], doc.Text), dim)
}

// PostFromTokens is PostFromDoc over a pre-computed tokenization of
// doc.Text: one tokenizer pass feeds both the topic match and, on the
// sentiment dimension, the polarity score.
func (m *Matcher) PostFromTokens(doc index.Doc, tokens []textutil.Token, dim Dimension) (core.Post, bool) {
	labels := m.MatchTokens(tokens)
	if len(labels) == 0 {
		return core.Post{}, false
	}
	value := doc.Time
	if dim == BySentiment {
		value = sentiment.ScoreTokens(doc.Text, tokens)
	}
	return core.Post{ID: doc.ID, Value: value, Labels: labels}, true
}

// FromIndex retrieves every document in [lo, hi] matching at least one topic
// from ix (via boolean-OR keyword queries, the paper's "search query against
// an inverted index" input path) and projects the matches onto dim. Each
// retrieved document is tokenized exactly once, into a reused buffer.
func (m *Matcher) FromIndex(ix *index.Index, dim Dimension, lo, hi float64) []core.Post {
	var terms []string
	for w := range m.byWord {
		terms = append(terms, w)
	}
	sort.Strings(terms) // deterministic query order
	positions := ix.AnyQuery(terms, lo, hi)
	posts := make([]core.Post, 0, len(positions))
	var buf []textutil.Token
	for _, pos := range positions {
		doc := ix.Doc(pos)
		buf = textutil.AppendTokens(buf[:0], doc.Text)
		if p, ok := m.PostFromTokens(doc, buf, dim); ok {
			posts = append(posts, p)
		}
	}
	return posts
}

// IndexBatch ingests docs into ix and projects the topic matches onto dim in
// the same pass — the tokenize-once batch path: each document is tokenized
// exactly once and the token slice is shared between the index writer
// (index.AddTokens) and the topic matcher. It returns the matched posts and
// the number of documents indexed; on a time-order violation ingestion stops
// there, the accepted prefix stays indexed, and the error is returned.
func (m *Matcher) IndexBatch(ix *index.Index, docs []index.Doc, dim Dimension) ([]core.Post, int, error) {
	var posts []core.Post
	var buf []textutil.Token
	for i, doc := range docs {
		buf = textutil.AppendTokens(buf[:0], doc.Text)
		if err := ix.AddTokens(doc, buf); err != nil {
			return posts, i, err
		}
		if p, ok := m.PostFromTokens(doc, buf, dim); ok {
			posts = append(posts, p)
		}
	}
	return posts, len(docs), nil
}

// FromLDA converts trained LDA topics into matcher queries: topic k becomes
// a Topic named by namer (or "topic-k") with its top keywordsPerTopic
// weighted keywords — the paper's §7.1 query-generation step.
func FromLDA(model *lda.Model, topicIDs []int, keywordsPerTopic int, namer func(k int) string) ([]Topic, error) {
	if len(topicIDs) == 0 {
		return nil, ErrNoTopics
	}
	topics := make([]Topic, 0, len(topicIDs))
	for _, k := range topicIDs {
		kws := model.TopKeywords(k, keywordsPerTopic)
		if len(kws) == 0 {
			return nil, fmt.Errorf("match: LDA topic %d has no keywords", k)
		}
		name := fmt.Sprintf("topic-%d", k)
		if namer != nil {
			name = namer(k)
		}
		t := Topic{Name: name}
		for _, kw := range kws {
			t.Keywords = append(t.Keywords, Keyword{Text: kw.Word, Weight: kw.Weight})
		}
		topics = append(topics, t)
	}
	return topics, nil
}
