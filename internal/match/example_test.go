package match_test

import (
	"fmt"

	"mqdp/internal/match"
)

func ExampleMatcher_Match() {
	m, err := match.NewMatcher([]match.Topic{
		{Name: "politics", Keywords: []match.Keyword{{Text: "obama", Weight: 1}, {Text: "senate", Weight: 0.6}}},
		{Name: "markets", Keywords: []match.Keyword{{Text: "stocks", Weight: 1}}},
	})
	if err != nil {
		panic(err)
	}
	labels := m.Match("obama comments move stocks higher")
	for _, a := range labels {
		fmt.Println(m.Topic(a).Name)
	}
	// Output:
	// politics
	// markets
}
