package match

import (
	"fmt"
	"math/rand"
	"testing"

	"mqdp/internal/core"
	"mqdp/internal/route"
)

func symTopics(n, kwPer int) []Topic {
	topics := make([]Topic, n)
	for i := range topics {
		topics[i] = Topic{Name: fmt.Sprintf("t%d", i)}
		for k := 0; k < kwPer; k++ {
			topics[i].Keywords = append(topics[i].Keywords,
				Keyword{Text: fmt.Sprintf("kw%d", (i*kwPer+k)%(n*kwPer*2/3+1)), Weight: 1})
		}
	}
	return topics
}

// TestMatchSymbolsEquivalence drives random word streams through the
// string matcher and its symbol-compiled form against the same shared
// table, asserting identical label sets — the routed fan-out's ground
// truth contract.
func TestMatchSymbolsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := route.NewTable()
	var matchers []*Matcher
	for i := 0; i < 8; i++ {
		m, err := NewMatcher(symTopics(2+rng.Intn(5), 1+rng.Intn(4)))
		if err != nil {
			t.Fatal(err)
		}
		m.CompileSymbols(tab)
		matchers = append(matchers, m)
	}
	vocab := []string{"kw0", "kw1", "kw2", "kw3", "kw5", "kw9", "noise", "filler", "lunch"}
	var symBuf []uint32
	var dst []core.Label
	for trial := 0; trial < 500; trial++ {
		var words []string
		for n := rng.Intn(12); n >= 0; n-- {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		symBuf = route.DedupSyms(tab.AppendSyms(symBuf[:0], words))
		for mi, m := range matchers {
			want := m.MatchWords(words)
			got := m.MatchSymbolsInto(dst, symBuf)
			if len(got) != len(want) {
				t.Fatalf("trial %d matcher %d: symbols %v vs words %v", trial, mi, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d matcher %d: symbols %v vs words %v", trial, mi, got, want)
				}
			}
			if got != nil {
				dst = got[:0]
			}
		}
	}
}

// TestCompileSymbolsPostingKeys checks the returned symbols are exactly
// the matcher's distinct keywords, sorted and deduplicated.
func TestCompileSymbolsPostingKeys(t *testing.T) {
	tab := route.NewTable()
	m, err := NewMatcher([]Topic{
		{Name: "a", Keywords: []Keyword{{Text: "x", Weight: 1}, {Text: "y", Weight: 1}}},
		{Name: "b", Keywords: []Keyword{{Text: "y", Weight: 1}, {Text: "z", Weight: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	syms := m.CompileSymbols(tab)
	if len(syms) != 3 {
		t.Fatalf("syms = %v, want 3 distinct", syms)
	}
	for i := 1; i < len(syms); i++ {
		if syms[i] <= syms[i-1] {
			t.Fatalf("syms not sorted/deduped: %v", syms)
		}
	}
	for _, w := range []string{"x", "y", "z"} {
		if _, ok := tab.Lookup(w); !ok {
			t.Errorf("keyword %q not interned", w)
		}
	}
}

// TestMatchIntoAllocs pins the zero-alloc contract of the scratch-based
// match paths (the alloc-counting analogue of wire's TestStreamDecodeAllocs):
// with a caller-provided label scratch, the no-match path performs zero
// heap allocations, and the match path none beyond first scratch growth.
func TestMatchIntoAllocs(t *testing.T) {
	tab := route.NewTable()
	m, err := NewMatcher([]Topic{
		{Name: "politics", Keywords: []Keyword{{Text: "obama", Weight: 1}, {Text: "senate", Weight: 1}}},
		{Name: "sports", Keywords: []Keyword{{Text: "game", Weight: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.CompileSymbols(tab)

	noMatch := []string{"irrelevant", "chatter", "about", "lunch"}
	hit := []string{"obama", "addresses", "the", "senate", "game"}
	scratch := make([]core.Label, 0, 8)

	if n := testing.AllocsPerRun(200, func() {
		if got := m.MatchWordsInto(scratch, noMatch); got != nil {
			t.Fatal("unexpected match")
		}
	}); n != 0 {
		t.Errorf("MatchWordsInto no-match allocs = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		got := m.MatchWordsInto(scratch, hit)
		if len(got) != 2 {
			t.Fatalf("labels = %v", got)
		}
	}); n != 0 {
		t.Errorf("MatchWordsInto match allocs = %v, want 0", n)
	}

	var symBuf []uint32
	symBuf = route.DedupSyms(tab.AppendSyms(symBuf[:0], hit))
	if n := testing.AllocsPerRun(200, func() {
		got := m.MatchSymbolsInto(scratch, symBuf)
		if len(got) != 2 {
			t.Fatalf("labels = %v", got)
		}
	}); n != 0 {
		t.Errorf("MatchSymbolsInto allocs = %v, want 0", n)
	}
	noSyms := route.DedupSyms(tab.AppendSyms(nil, noMatch))
	if n := testing.AllocsPerRun(200, func() {
		if got := m.MatchSymbolsInto(scratch, noSyms); got != nil {
			t.Fatal("unexpected match")
		}
	}); n != 0 {
		t.Errorf("MatchSymbolsInto no-match allocs = %v, want 0", n)
	}

	// The tokenized form shares the same scratch contract.
	if n := testing.AllocsPerRun(200, func() {
		if got := m.MatchTokensInto(scratch, nil); got != nil {
			t.Fatal("unexpected match")
		}
	}); n != 0 {
		t.Errorf("MatchTokensInto no-match allocs = %v, want 0", n)
	}
}
