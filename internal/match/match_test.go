package match

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mqdp/internal/core"
	"mqdp/internal/index"
	"mqdp/internal/lda"
)

func testTopics() []Topic {
	return []Topic{
		{Name: "obama", Keywords: []Keyword{{Text: "obama", Weight: 1}, {Text: "president", Weight: 0.5}}},
		{Name: "economy", Keywords: []Keyword{{Text: "economy", Weight: 1}, {Text: "market", Weight: 0.5}, {Text: "jobs", Weight: 0.3}}},
		{Name: "sports", Keywords: []Keyword{{Text: "game", Weight: 1}, {Text: "team", Weight: 0.6}}},
	}
}

func TestNewMatcherValidation(t *testing.T) {
	if _, err := NewMatcher(nil); !errors.Is(err, ErrNoTopics) {
		t.Errorf("empty topics error = %v", err)
	}
	if _, err := NewMatcher([]Topic{{Name: "empty"}}); err == nil {
		t.Error("topic without keywords accepted")
	}
}

func TestMatchSingleAndMultiTopic(t *testing.T) {
	m, err := NewMatcher(testTopics())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Match("the president spoke about the economy today"); !reflect.DeepEqual(got, []core.Label{0, 1}) {
		t.Errorf("Match = %v, want [0 1]", got)
	}
	if got := m.Match("big game for the home team"); !reflect.DeepEqual(got, []core.Label{2}) {
		t.Errorf("Match = %v, want [2]", got)
	}
	if got := m.Match("nothing relevant here"); got != nil {
		t.Errorf("Match = %v, want nil", got)
	}
	// Repeated keywords must not duplicate labels.
	if got := m.Match("obama obama obama"); !reflect.DeepEqual(got, []core.Label{0}) {
		t.Errorf("Match = %v, want [0]", got)
	}
}

func TestMatcherAccessors(t *testing.T) {
	m, err := NewMatcher(testTopics())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTopics() != 3 {
		t.Errorf("NumTopics = %d", m.NumTopics())
	}
	if m.Topic(1).Name != "economy" {
		t.Errorf("Topic(1) = %q", m.Topic(1).Name)
	}
}

func TestPostFromDocDimensions(t *testing.T) {
	m, err := NewMatcher(testTopics())
	if err != nil {
		t.Fatal(err)
	}
	doc := index.Doc{ID: 9, Time: 123, Text: "great win for the team and a strong economy"}
	p, ok := m.PostFromDoc(doc, ByTime)
	if !ok {
		t.Fatal("matching doc rejected")
	}
	if p.ID != 9 || p.Value != 123 {
		t.Errorf("ByTime post = %+v", p)
	}
	if !reflect.DeepEqual(p.Labels, []core.Label{1, 2}) {
		t.Errorf("labels = %v, want [1 2]", p.Labels)
	}
	ps, ok := m.PostFromDoc(doc, BySentiment)
	if !ok {
		t.Fatal("matching doc rejected for sentiment")
	}
	if ps.Value <= 0 {
		t.Errorf("sentiment value = %v, want positive for %q", ps.Value, doc.Text)
	}
	if _, ok := m.PostFromDoc(index.Doc{ID: 1, Time: 0, Text: "irrelevant"}, ByTime); ok {
		t.Error("non-matching doc accepted")
	}
}

func TestFromIndex(t *testing.T) {
	m, err := NewMatcher(testTopics())
	if err != nil {
		t.Fatal(err)
	}
	ix := index.New()
	docs := []index.Doc{
		{ID: 1, Time: 10, Text: "obama speech tonight"},
		{ID: 2, Time: 20, Text: "cooking recipes and tips"},
		{ID: 3, Time: 30, Text: "market rally lifts economy"},
		{ID: 4, Time: 40, Text: "team wins the game"},
	}
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	posts := m.FromIndex(ix, ByTime, 0, 100)
	if len(posts) != 3 {
		t.Fatalf("FromIndex = %d posts, want 3", len(posts))
	}
	wantIDs := []int64{1, 3, 4}
	for i, p := range posts {
		if p.ID != wantIDs[i] {
			t.Errorf("post %d ID = %d, want %d", i, p.ID, wantIDs[i])
		}
	}
	// Time-windowed retrieval.
	posts = m.FromIndex(ix, ByTime, 25, 35)
	if len(posts) != 1 || posts[0].ID != 3 {
		t.Errorf("windowed FromIndex = %+v, want just doc 3", posts)
	}
}

func TestMatchedPostsFormValidInstance(t *testing.T) {
	m, err := NewMatcher(testTopics())
	if err != nil {
		t.Fatal(err)
	}
	ix := index.New()
	texts := []string{
		"obama press conference", "jobs numbers beat forecast", "game night",
		"president meets economy advisors", "team trade rumors",
	}
	for i, txt := range texts {
		if err := ix.Add(index.Doc{ID: int64(i), Time: float64(i * 10), Text: txt}); err != nil {
			t.Fatal(err)
		}
	}
	posts := m.FromIndex(ix, ByTime, 0, 1000)
	in, err := core.NewInstance(posts, m.NumTopics())
	if err != nil {
		t.Fatalf("matched posts rejected by core: %v", err)
	}
	cover := in.Scan(core.FixedLambda(15))
	if err := in.VerifyCover(core.FixedLambda(15), cover.Selected); err != nil {
		t.Errorf("pipeline cover invalid: %v", err)
	}
}

func TestMatchScores(t *testing.T) {
	m, err := NewMatcher(testTopics())
	if err != nil {
		t.Fatal(err)
	}
	// "economy" (1.0) + "market" (0.5) for topic 1; "obama" (1.0) for 0.
	scores := m.MatchScores([]string{"obama", "economy", "market", "economy"})
	if len(scores) != 2 {
		t.Fatalf("scores = %+v", scores)
	}
	if scores[0].Label != 0 || scores[0].Value != 1.0 {
		t.Errorf("obama score = %+v", scores[0])
	}
	if scores[1].Label != 1 || scores[1].Value != 1.5 {
		t.Errorf("economy score = %+v (repeated keyword must count once)", scores[1])
	}
	if got := m.MatchScores([]string{"nothing"}); len(got) != 0 {
		t.Errorf("no-match scores = %+v", got)
	}
}

func TestMatchThreshold(t *testing.T) {
	m, err := NewMatcher(testTopics())
	if err != nil {
		t.Fatal(err)
	}
	text := "the economy and the market moved while obama watched"
	// economy scores 1.5, obama 1.0.
	if got := m.MatchThreshold(text, 1.2); len(got) != 1 || got[0] != 1 {
		t.Errorf("theta=1.2 labels = %v, want [1]", got)
	}
	if got := m.MatchThreshold(text, 0.5); len(got) != 2 {
		t.Errorf("theta=0.5 labels = %v, want both", got)
	}
	if got := m.MatchThreshold(text, 99); got != nil {
		t.Errorf("theta=99 labels = %v, want none", got)
	}
}

func TestFromLDA(t *testing.T) {
	corpus := lda.NewCorpus()
	for i := 0; i < 30; i++ {
		corpus.AddWords([]string{"senate", "vote", "bill"})
		corpus.AddWords([]string{"game", "team", "score"})
	}
	model, err := lda.Train(corpus, lda.Options{Topics: 2, Iterations: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	topics, err := FromLDA(model, []int{0, 1}, 3, func(k int) string { return fmt.Sprintf("q%d", k) })
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 2 || topics[0].Name != "q0" || len(topics[0].Keywords) != 3 {
		t.Fatalf("topics = %+v", topics)
	}
	if _, err := NewMatcher(topics); err != nil {
		t.Fatalf("LDA topics rejected by matcher: %v", err)
	}
	if _, err := FromLDA(model, nil, 3, nil); err == nil {
		t.Error("empty topic list accepted")
	}
	if _, err := FromLDA(model, []int{0}, 0, nil); err == nil {
		t.Error("zero keywords accepted")
	}
}

func TestIndexBatch(t *testing.T) {
	m, err := NewMatcher(testTopics())
	if err != nil {
		t.Fatal(err)
	}
	docs := []index.Doc{
		{ID: 1, Time: 10, Text: "obama speech tonight"},
		{ID: 2, Time: 20, Text: "cooking recipes and tips"},
		{ID: 3, Time: 30, Text: "market rally lifts economy"},
		{ID: 4, Time: 40, Text: "team wins the game"},
	}
	// Reference: serial Add + PostFromDoc.
	serial := index.New()
	var wantPosts []core.Post
	for _, d := range docs {
		if err := serial.Add(d); err != nil {
			t.Fatal(err)
		}
		if p, ok := m.PostFromDoc(d, ByTime); ok {
			wantPosts = append(wantPosts, p)
		}
	}
	batched := index.New()
	posts, n, err := m.IndexBatch(batched, docs, ByTime)
	if err != nil || n != len(docs) {
		t.Fatalf("IndexBatch = %d, %v", n, err)
	}
	if !reflect.DeepEqual(posts, wantPosts) {
		t.Errorf("IndexBatch posts = %+v, want %+v", posts, wantPosts)
	}
	if batched.Len() != serial.Len() || batched.Terms() != serial.Terms() {
		t.Errorf("batched index Len/Terms = %d/%d, serial %d/%d",
			batched.Len(), batched.Terms(), serial.Len(), serial.Terms())
	}
	for _, term := range []string{"obama", "economy", "game"} {
		if got, want := batched.TermQuery(term, 0, 100), serial.TermQuery(term, 0, 100); !reflect.DeepEqual(got, want) {
			t.Errorf("TermQuery(%q): batched %v, serial %v", term, got, want)
		}
	}

	// A time-order violation stops ingestion at the offender; the accepted
	// prefix stays indexed and its matches are returned.
	bad := []index.Doc{
		{ID: 5, Time: 50, Text: "obama rally"},
		{ID: 6, Time: 45, Text: "game night"},
	}
	posts, n, err = m.IndexBatch(batched, bad, ByTime)
	if err == nil || n != 1 {
		t.Fatalf("IndexBatch with violation = %d, %v; want 1, error", n, err)
	}
	if len(posts) != 1 || posts[0].ID != 5 {
		t.Errorf("violation batch posts = %+v, want just doc 5", posts)
	}
	if batched.Len() != len(docs)+1 {
		t.Errorf("index Len after violation = %d, want %d", batched.Len(), len(docs)+1)
	}
}
