package match

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// obamaCorpus emits documents where "obama" reliably co-occurs with
// "whitehouse" and "potus", while "pizza" co-occurs with neither.
func obamaCorpus(e *Expander, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			e.Observe([]string{"obama", "whitehouse", "potus", "press", fmt.Sprintf("noise%d", rng.Intn(50))})
		case 1:
			e.Observe([]string{"obama", "whitehouse", "speech", fmt.Sprintf("noise%d", rng.Intn(50))})
		default:
			e.Observe([]string{"pizza", "cheese", "oven", fmt.Sprintf("noise%d", rng.Intn(50))})
		}
	}
}

func TestNewExpanderValidation(t *testing.T) {
	if _, err := NewExpander(nil); !errors.Is(err, ErrNoSeeds) {
		t.Errorf("empty seeds error = %v", err)
	}
	if _, err := NewExpander([]string{""}); !errors.Is(err, ErrNoSeeds) {
		t.Errorf("blank seeds error = %v", err)
	}
}

func TestCollocatesFindContext(t *testing.T) {
	e, err := NewExpander([]string{"obama"})
	if err != nil {
		t.Fatal(err)
	}
	obamaCorpus(e, 300, rand.New(rand.NewSource(1)))
	if e.Docs() != 300 {
		t.Errorf("Docs = %d", e.Docs())
	}
	cols := e.Collocates("obama", 3, 5)
	if len(cols) == 0 {
		t.Fatal("no collocates found")
	}
	if cols[0].Word != "whitehouse" {
		t.Errorf("top collocate = %q, want whitehouse (cols %v)", cols[0].Word, cols)
	}
	for _, c := range cols {
		if c.Word == "cheese" || c.Word == "oven" {
			t.Errorf("unrelated word %q ranked as collocate", c.Word)
		}
		if c.PMI <= 0 {
			t.Errorf("non-positive PMI %v for %q", c.PMI, c.Word)
		}
	}
	if got := e.Collocates("unknown", 3, 1); got != nil {
		t.Errorf("Collocates(unknown) = %v", got)
	}
	if got := e.Collocates("obama", 0, 1); got != nil {
		t.Errorf("n=0 collocates = %v", got)
	}
}

func TestExpandImprovesRecall(t *testing.T) {
	// Posts mention "whitehouse" without the keyword "obama"; the expanded
	// topic catches them.
	e, err := NewExpander([]string{"obama"})
	if err != nil {
		t.Fatal(err)
	}
	obamaCorpus(e, 300, rand.New(rand.NewSource(2)))
	base := Topic{Name: "obama", Keywords: []Keyword{{Text: "obama", Weight: 1}}}
	expanded := e.Expand(base, 2, 5, 0.1)
	if len(expanded.Keywords) <= len(base.Keywords) {
		t.Fatalf("expansion added no keywords: %v", expanded.Keywords)
	}
	if len(base.Keywords) != 1 {
		t.Fatal("Expand mutated the input topic")
	}
	mBase, err := NewMatcher([]Topic{base})
	if err != nil {
		t.Fatal(err)
	}
	mExp, err := NewMatcher([]Topic{expanded})
	if err != nil {
		t.Fatal(err)
	}
	post := "statement from the whitehouse this afternoon"
	if got := mBase.Match(post); got != nil {
		t.Fatalf("base matcher unexpectedly matched: %v", got)
	}
	if got := mExp.Match(post); len(got) != 1 {
		t.Errorf("expanded matcher missed the contextual post (keywords %v)", expanded.Keywords)
	}
	// Weights are normalized into (0, 1].
	for _, kw := range expanded.Keywords[1:] {
		if kw.Weight <= 0 || kw.Weight > 1 {
			t.Errorf("expanded keyword weight %v outside (0,1]", kw.Weight)
		}
	}
}

func TestExpandRespectsLimits(t *testing.T) {
	e, err := NewExpander([]string{"obama"})
	if err != nil {
		t.Fatal(err)
	}
	obamaCorpus(e, 300, rand.New(rand.NewSource(3)))
	base := Topic{Name: "t", Keywords: []Keyword{{Text: "obama", Weight: 1}}}
	if got := e.Expand(base, 0, 1, 0); len(got.Keywords) != 1 {
		t.Errorf("extra=0 expanded to %v", got.Keywords)
	}
	one := e.Expand(base, 1, 5, 0.1)
	if len(one.Keywords) != 2 {
		t.Errorf("extra=1 produced %d keywords", len(one.Keywords))
	}
	// A huge minCount filters everything.
	none := e.Expand(base, 5, 10000, 0.1)
	if len(none.Keywords) != 1 {
		t.Errorf("unreachable minCount still expanded: %v", none.Keywords)
	}
	// Existing keywords are never re-added.
	both := Topic{Name: "t", Keywords: []Keyword{{Text: "obama", Weight: 1}, {Text: "whitehouse", Weight: 1}}}
	exp := e.Expand(both, 3, 5, 0.1)
	seen := map[string]int{}
	for _, kw := range exp.Keywords {
		seen[kw.Text]++
		if seen[kw.Text] > 1 {
			t.Errorf("duplicate keyword %q after expansion", kw.Text)
		}
	}
}

func TestObserveEmptyAndUnseeded(t *testing.T) {
	e, err := NewExpander([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(nil)
	e.ObserveText("")
	if e.Docs() != 0 {
		t.Errorf("empty documents counted: %d", e.Docs())
	}
	e.ObserveText("the quick brown fox") // no seeds present
	if e.Docs() != 1 {
		t.Errorf("Docs = %d", e.Docs())
	}
	if got := e.Collocates("x", 5, 1); got != nil {
		t.Errorf("collocates without seed sightings = %v", got)
	}
}
