// Package sentiment scores the polarity of short texts with an embedded
// lexicon, providing the paper's second diversity dimension: instead of
// publication time, posts can be diversified over sentiment polarity in
// [-1, 1] (§2, §6). The scorer handles negation ("not good") and simple
// intensifiers ("very bad"), which is sufficient signal for ordering posts
// on a sentiment axis.
package sentiment

import (
	"sort"
	"strings"

	"mqdp/internal/textutil"
)

// Score rates text in [-1, 1]: negative values lean negative, positive
// values lean positive, 0 is neutral (or empty). The score is the
// valence sum of lexicon hits — with negators flipping and intensifiers
// amplifying the following sentiment word — plus emoticon/emoji valences
// (which survive in microblog text where words fail), squashed by
// x/(1+|x|).
func Score(text string) float64 {
	var buf [32]textutil.Token
	return ScoreTokens(text, textutil.AppendTokens(buf[:0], text))
}

// ScoreTokens is Score over a pre-computed tokenization of text — the
// tokenize-once path for callers that already hold text's tokens (e.g. the
// matcher's index-ingest pipeline). tokens must be textutil's tokenization
// of text; the raw text is still needed for emoticon valence, which lives
// in punctuation the tokenizer strips.
func ScoreTokens(text string, tokens []textutil.Token) float64 {
	total := emoticonValence(text)
	negate := false
	boost := 1.0
	for _, tok := range tokens {
		w := tok.Text
		if _, ok := negators[w]; ok {
			negate = !negate
			continue
		}
		if mult, ok := intensifiers[w]; ok {
			boost *= mult
			continue
		}
		if v, ok := lexicon[w]; ok {
			val := v * boost
			if negate {
				val = -val
			}
			total += val
		}
		// Negation and intensity apply only to the next content word.
		negate = false
		boost = 1.0
	}
	return total / (1 + abs(total))
}

// Polarity buckets a score.
type Polarity int

// Polarity classes.
const (
	Negative Polarity = iota - 1
	Neutral
	Positive
)

// Classify buckets a score with a ±0.15 neutral band.
func Classify(score float64) Polarity {
	switch {
	case score > 0.15:
		return Positive
	case score < -0.15:
		return Negative
	default:
		return Neutral
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// emoticons maps surface emoticon/emoji strings to valences. Longer forms
// are listed before their prefixes so counting does not double-count (e.g.
// ":-(" is removed from the text before ":(" is counted).
var emoticons = []struct {
	s string
	v float64
}{
	{":-)", 0.6}, {":)", 0.6}, {":-D", 0.8}, {":D", 0.8}, {";-)", 0.5},
	{";)", 0.5}, {"<3", 0.7}, {"😀", 0.7}, {"😂", 0.6}, {"🎉", 0.7},
	{"❤", 0.7}, {"👍", 0.6},
	{":'(", -0.8}, {":-(", -0.6}, {":(", -0.6}, {":-/", -0.3}, {":/", -0.3},
	{"😡", -0.7}, {"😢", -0.7}, {"💔", -0.7}, {"👎", -0.6},
}

// emoticonValence sums emoticon valences in raw text (the tokenizer strips
// punctuation, so these are matched before tokenization).
func emoticonValence(text string) float64 {
	total := 0.0
	rest := text
	for _, e := range emoticons {
		if n := strings.Count(rest, e.s); n > 0 {
			total += float64(n) * e.v
			rest = strings.ReplaceAll(rest, e.s, " ")
		}
	}
	return total
}

// negators flip the valence of the following sentiment word.
var negators = map[string]struct{}{
	"not": {}, "no": {}, "never": {}, "n't": {}, "don't": {}, "doesn't": {},
	"didn't": {}, "won't": {}, "can't": {}, "cannot": {}, "isn't": {},
	"wasn't": {}, "aren't": {}, "without": {}, "hardly": {}, "barely": {},
}

// intensifiers scale the valence of the following sentiment word.
var intensifiers = map[string]float64{
	"very": 1.5, "really": 1.5, "extremely": 2.0, "so": 1.3, "totally": 1.6,
	"absolutely": 1.8, "incredibly": 1.8, "super": 1.5, "quite": 1.2,
	"slightly": 0.6, "somewhat": 0.7, "a-bit": 0.7, "pretty": 1.3,
	"deeply": 1.6, "highly": 1.5, "utterly": 1.8,
}

// lexicon maps lowercase words to base valences in [-1, 1].
var lexicon = map[string]float64{
	// positive
	"good": 0.6, "great": 0.8, "excellent": 0.9, "amazing": 0.9,
	"awesome": 0.9, "fantastic": 0.9, "wonderful": 0.8, "love": 0.8,
	"loved": 0.8, "loves": 0.8, "like": 0.3, "liked": 0.3, "likes": 0.3,
	"best": 0.8, "better": 0.4, "win": 0.6, "wins": 0.6, "winning": 0.6,
	"won": 0.6, "happy": 0.7, "glad": 0.6, "joy": 0.7, "beautiful": 0.7,
	"brilliant": 0.8, "success": 0.7, "successful": 0.7, "positive": 0.5,
	"strong": 0.4, "growth": 0.5, "gain": 0.5, "gains": 0.5, "rally": 0.5,
	"surge": 0.5, "soar": 0.6, "soars": 0.6, "boom": 0.5, "improve": 0.5,
	"improved": 0.5, "improving": 0.5, "recovery": 0.5, "hope": 0.4,
	"hopeful": 0.5, "optimistic": 0.6, "celebrate": 0.7, "celebrates": 0.7,
	"cheer": 0.6, "cheers": 0.6, "thank": 0.5, "thanks": 0.5, "proud": 0.6,
	"safe": 0.4, "support": 0.3, "supports": 0.3, "agree": 0.3,
	"breakthrough": 0.7, "record": 0.3, "smart": 0.5, "nice": 0.5,
	"cool": 0.4, "perfect": 0.8, "solid": 0.4, "impressive": 0.7,
	// negative
	"bad": -0.6, "terrible": -0.9, "awful": -0.9, "horrible": -0.9,
	"worst": -0.9, "worse": -0.5, "hate": -0.8, "hated": -0.8,
	"hates": -0.8, "fail": -0.6, "fails": -0.6, "failed": -0.6,
	"failure": -0.7, "lose": -0.5, "loses": -0.5, "losing": -0.5,
	"lost": -0.5, "loss": -0.5, "losses": -0.5, "sad": -0.6, "angry": -0.7,
	"anger": -0.6, "fear": -0.6, "afraid": -0.5, "scared": -0.6,
	"crisis": -0.7, "disaster": -0.8, "crash": -0.7, "crashes": -0.7,
	"collapse": -0.7, "drop": -0.4, "drops": -0.4, "plunge": -0.6,
	"plunges": -0.6, "slump": -0.5, "decline": -0.4, "declines": -0.4,
	"weak": -0.4, "poor": -0.5, "negative": -0.5, "wrong": -0.5,
	"corrupt": -0.7, "corruption": -0.7, "scandal": -0.7, "fraud": -0.8,
	"war": -0.6, "attack": -0.6, "attacks": -0.6, "violence": -0.7,
	"dead": -0.7, "death": -0.7, "deaths": -0.7, "killed": -0.8,
	"kill": -0.8, "kills": -0.8, "injured": -0.6, "hurt": -0.5,
	"threat": -0.5, "threats": -0.5, "risk": -0.4, "risks": -0.4,
	"worry": -0.5, "worried": -0.5, "worries": -0.5, "panic": -0.7,
	"angst": -0.5, "doubt": -0.4, "doubts": -0.4, "problem": -0.4,
	"problems": -0.4, "broken": -0.5, "blame": -0.5, "blames": -0.5,
	"unemployment": -0.5, "recession": -0.7, "deficit": -0.4,
	"shutdown": -0.5, "cut": -0.3, "cuts": -0.3, "layoff": -0.6,
	"layoffs": -0.6, "strike": -0.4, "protest": -0.3, "protests": -0.3,
	"stupid": -0.6, "dumb": -0.6, "ugly": -0.6, "boring": -0.4,
	"disappointing": -0.6, "disappointed": -0.6, "mess": -0.5,
}

// LexiconSize reports how many sentiment-bearing words are known; exposed so
// the synthetic generator can sanity-check its vocabulary overlap.
func LexiconSize() int { return len(lexicon) }

// Valence returns the base valence of a word and whether it is in the
// lexicon.
func Valence(word string) (float64, bool) {
	v, ok := lexicon[word]
	return v, ok
}

// PositiveWords returns lexicon words with valence ≥ floor, sorted (so
// seeded generators sampling from it stay deterministic).
func PositiveWords(floor float64) []string {
	var out []string
	for w, v := range lexicon {
		if v >= floor {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// NegativeWords returns lexicon words with valence ≤ ceil, sorted.
func NegativeWords(ceil float64) []string {
	var out []string
	for w, v := range lexicon {
		if v <= ceil {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}
