package sentiment_test

import (
	"fmt"

	"mqdp/internal/sentiment"
)

func ExampleScore() {
	for _, text := range []string{
		"great win for the team tonight :)",
		"markets crash as recession fears grow",
		"the meeting is on tuesday",
	} {
		switch sentiment.Classify(sentiment.Score(text)) {
		case sentiment.Positive:
			fmt.Println("positive")
		case sentiment.Negative:
			fmt.Println("negative")
		default:
			fmt.Println("neutral")
		}
	}
	// Output:
	// positive
	// negative
	// neutral
}
