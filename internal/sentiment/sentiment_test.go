package sentiment

import (
	"sort"
	"testing"
)

func TestScoreSigns(t *testing.T) {
	cases := []struct {
		text string
		sign int // -1, 0, +1
	}{
		{"the economy shows strong growth and gains", +1},
		{"what a great win for the team tonight", +1},
		{"markets crash as recession fears grow", -1},
		{"terrible disaster, many killed in the attack", -1},
		{"the meeting is scheduled for tuesday", 0},
		{"", 0},
	}
	for _, tc := range cases {
		s := Score(tc.text)
		switch {
		case tc.sign > 0 && s <= 0:
			t.Errorf("Score(%q) = %v, want positive", tc.text, s)
		case tc.sign < 0 && s >= 0:
			t.Errorf("Score(%q) = %v, want negative", tc.text, s)
		case tc.sign == 0 && s != 0:
			t.Errorf("Score(%q) = %v, want 0", tc.text, s)
		}
	}
}

func TestScoreRange(t *testing.T) {
	texts := []string{
		"amazing wonderful fantastic excellent best great good win",
		"terrible awful horrible worst disaster crash fraud killed",
		"neutral words only here",
	}
	for _, text := range texts {
		if s := Score(text); s < -1 || s > 1 {
			t.Errorf("Score(%q) = %v outside [-1, 1]", text, s)
		}
	}
}

func TestNegationFlips(t *testing.T) {
	pos := Score("the plan is good")
	neg := Score("the plan is not good")
	if pos <= 0 {
		t.Fatalf("baseline positive score = %v", pos)
	}
	if neg >= 0 {
		t.Errorf("negated score = %v, want negative", neg)
	}
}

func TestIntensifierAmplifies(t *testing.T) {
	plain := Score("the results were bad")
	strong := Score("the results were extremely bad")
	if !(strong < plain) {
		t.Errorf("extremely bad (%v) should be more negative than bad (%v)", strong, plain)
	}
}

func TestNegationOnlyAppliesToNextWord(t *testing.T) {
	// "not" flips "bad" but leaves the later "great" positive.
	s := Score("not bad at all, actually great")
	if s <= 0 {
		t.Errorf("Score = %v, want positive (not-bad plus great)", s)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		score float64
		want  Polarity
	}{
		{0.5, Positive}, {0.16, Positive},
		{0.1, Neutral}, {0, Neutral}, {-0.15, Neutral},
		{-0.16, Negative}, {-0.9, Negative},
	}
	for _, tc := range cases {
		if got := Classify(tc.score); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.score, got, tc.want)
		}
	}
}

func TestLexiconHelpers(t *testing.T) {
	if LexiconSize() < 100 {
		t.Errorf("lexicon suspiciously small: %d entries", LexiconSize())
	}
	if v, ok := Valence("great"); !ok || v <= 0 {
		t.Errorf("Valence(great) = %v, %v", v, ok)
	}
	if v, ok := Valence("crash"); !ok || v >= 0 {
		t.Errorf("Valence(crash) = %v, %v", v, ok)
	}
	if _, ok := Valence("tuesday"); ok {
		t.Error("tuesday should not be in the lexicon")
	}
	pos := PositiveWords(0.5)
	neg := NegativeWords(-0.5)
	if len(pos) == 0 || len(neg) == 0 {
		t.Fatalf("word lists empty: %d positive, %d negative", len(pos), len(neg))
	}
	sort.Strings(pos)
	for _, w := range pos {
		if v, _ := Valence(w); v < 0.5 {
			t.Errorf("PositiveWords(0.5) contains %q with valence %v", w, v)
		}
	}
	for _, w := range neg {
		if v, _ := Valence(w); v > -0.5 {
			t.Errorf("NegativeWords(-0.5) contains %q with valence %v", w, v)
		}
	}
}

func TestScoreMonotoneInPositiveContent(t *testing.T) {
	weak := Score("a good day")
	strong := Score("a good day with a great win and amazing success")
	if !(strong > weak) {
		t.Errorf("more positive content scored lower: %v vs %v", strong, weak)
	}
}

func TestEmoticons(t *testing.T) {
	cases := []struct {
		text string
		sign int
	}{
		{"waiting for the results :)", +1},
		{"waiting for the results :(", -1},
		{"great game :D <3", +1},
		{"stuck in traffic again :-/", -1},
		{"love this 😀🎉", +1},
		{"so sad 😢💔", -1},
	}
	for _, tc := range cases {
		s := Score(tc.text)
		if tc.sign > 0 && s <= 0 {
			t.Errorf("Score(%q) = %v, want positive", tc.text, s)
		}
		if tc.sign < 0 && s >= 0 {
			t.Errorf("Score(%q) = %v, want negative", tc.text, s)
		}
	}
}

func TestEmoticonsCombineWithWords(t *testing.T) {
	// An emoticon strengthens agreeing text and can flip weak text.
	plain := Score("the game tonight")
	smiley := Score("the game tonight :)")
	if !(smiley > plain) {
		t.Errorf("smiley did not raise score: %v vs %v", smiley, plain)
	}
	if s := Score("good :("); s >= Score("good") {
		t.Errorf("frown did not lower a positive text: %v", s)
	}
}

func TestEmoticonNoDoubleCount(t *testing.T) {
	// ":-(" must not additionally count as ":(".
	one := Score(":-(")
	if two := Score(":( :("); !(two < one) {
		t.Errorf("two frowns (%v) should be more negative than one long frown (%v)", two, one)
	}
}
