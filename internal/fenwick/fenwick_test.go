package fenwick

import (
	"math/rand"
	"testing"
)

func TestBasicOperations(t *testing.T) {
	f := New(8)
	if f.Len() != 8 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Add(0, 1)
	f.Add(3, 2)
	f.Add(7, 5)
	cases := []struct{ from, to, want int }{
		{0, 8, 8}, {0, 1, 1}, {1, 3, 0}, {3, 4, 2}, {4, 8, 5}, {7, 8, 5},
		{5, 5, 0}, {6, 2, 0},
	}
	for _, tc := range cases {
		if got := f.RangeSum(tc.from, tc.to); got != tc.want {
			t.Errorf("RangeSum(%d,%d) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
	f.Add(3, -2)
	if got := f.RangeSum(0, 8); got != 6 {
		t.Errorf("after decrement, total = %d, want 6", got)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 50
	f := New(n)
	ref := make([]int, n)
	for step := 0; step < 2000; step++ {
		if rng.Intn(2) == 0 {
			i, d := rng.Intn(n), rng.Intn(5)-2
			f.Add(i, d)
			ref[i] += d
		} else {
			from, to := rng.Intn(n+1), rng.Intn(n+1)
			want := 0
			for i := from; i < to; i++ {
				want += ref[i]
			}
			if got := f.RangeSum(from, to); got != want {
				t.Fatalf("step %d: RangeSum(%d,%d) = %d, want %d", step, from, to, got, want)
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	f := New(0)
	if f.Prefix(0) != 0 || f.RangeSum(0, 0) != 0 {
		t.Error("empty tree misbehaved")
	}
}
