// Package fenwick provides a Fenwick (binary indexed) tree over integer
// counts. Both the offline GreedySC solver and the streaming greedy
// processor use it to count uncovered (post, label) pairs inside value
// windows in O(log n).
package fenwick

// Tree is a Fenwick tree over n positions of int counts. The zero value is
// unusable; call New.
type Tree struct {
	tree []int
}

// New returns a tree of n zeroed positions.
func New(n int) *Tree {
	return &Tree{tree: make([]int, n+1)}
}

// Len reports the number of positions.
func (f *Tree) Len() int { return len(f.tree) - 1 }

// Add adds delta at position i (0-based).
func (f *Tree) Add(i, delta int) {
	for i++; i < len(f.tree); i += i & -i {
		f.tree[i] += delta
	}
}

// Prefix returns the sum of positions [0, i).
func (f *Tree) Prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}

// RangeSum returns the sum of positions [from, to).
func (f *Tree) RangeSum(from, to int) int {
	if from >= to {
		return 0
	}
	return f.Prefix(to) - f.Prefix(from)
}
