package mqdp_test

import (
	"errors"
	"testing"

	"mqdp"
)

// figure2Posts is the paper's running example (Figure 2) through the public
// API: labels a=0, c=1, four posts Δt=1 apart.
func figure2Posts() ([]mqdp.Post, int) {
	return []mqdp.Post{
		{ID: 1, Value: 1, Labels: []mqdp.Label{0}},
		{ID: 2, Value: 2, Labels: []mqdp.Label{0}},
		{ID: 3, Value: 3, Labels: []mqdp.Label{0, 1}},
		{ID: 4, Value: 4, Labels: []mqdp.Label{1}},
	}, 2
}

func TestSolveAllAlgorithms(t *testing.T) {
	posts, numLabels := figure2Posts()
	inst, err := mqdp.NewInstance(posts, numLabels)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []mqdp.Algorithm{mqdp.Scan, mqdp.ScanPlus, mqdp.GreedySC, mqdp.OPT, mqdp.Exhaustive} {
		cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: 1, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if cover.Size() < 2 || cover.Size() > 3 {
			t.Errorf("%s size = %d, want 2..3", algo, cover.Size())
		}
		if algo == mqdp.OPT || algo == mqdp.Exhaustive {
			if cover.Size() != 2 {
				t.Errorf("%s size = %d, want exactly 2", algo, cover.Size())
			}
			if !cover.Optimal {
				t.Errorf("%s cover not flagged optimal", algo)
			}
		}
	}
}

func TestSolveWithDictionary(t *testing.T) {
	var dict mqdp.Dictionary
	obama, economy := dict.Intern("obama"), dict.Intern("economy")
	posts := []mqdp.Post{
		{ID: 1, Value: 0, Labels: []mqdp.Label{obama}},
		{ID: 2, Value: 30, Labels: []mqdp.Label{obama, economy}},
		{ID: 3, Value: 65, Labels: []mqdp.Label{economy}},
	}
	inst, err := mqdp.NewInstance(posts, dict.Len())
	if err != nil {
		t.Fatal(err)
	}
	cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: 40, Algorithm: mqdp.GreedySC})
	if err != nil {
		t.Fatal(err)
	}
	if cover.Size() != 1 {
		t.Errorf("cover = %v, want just post 2", cover.IDs(inst))
	}
	if dict.Name(obama) != "obama" {
		t.Errorf("dictionary round-trip failed")
	}
}

func TestSolveProportional(t *testing.T) {
	posts, numLabels := figure2Posts()
	inst, err := mqdp.NewInstance(posts, numLabels)
	if err != nil {
		t.Fatal(err)
	}
	cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: 1, Algorithm: mqdp.Scan, Proportional: true})
	if err != nil {
		t.Fatal(err)
	}
	if cover.Size() == 0 {
		t.Error("empty proportional cover")
	}
	if _, err := mqdp.Solve(inst, mqdp.Options{Lambda: 1, Algorithm: mqdp.OPT, Proportional: true}); !errors.Is(err, mqdp.ErrUnsupported) {
		t.Errorf("OPT+Proportional error = %v, want ErrUnsupported", err)
	}
}

func TestSolveRejectsBadOptions(t *testing.T) {
	posts, numLabels := figure2Posts()
	inst, _ := mqdp.NewInstance(posts, numLabels)
	if _, err := mqdp.Solve(inst, mqdp.Options{Lambda: -1}); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := mqdp.Solve(inst, mqdp.Options{Lambda: 1, Algorithm: mqdp.Algorithm(99)}); !errors.Is(err, mqdp.ErrUnsupported) {
		t.Error("unknown algorithm accepted")
	}
}

func TestStreamingThroughFacade(t *testing.T) {
	posts, numLabels := figure2Posts()
	for _, algo := range []mqdp.StreamAlgorithm{
		mqdp.StreamScan, mqdp.StreamScanPlus, mqdp.StreamGreedy, mqdp.StreamGreedyPlus, mqdp.Instant,
	} {
		p, err := mqdp.NewStream(algo, numLabels, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty processor name", algo)
		}
		emissions, err := mqdp.RunStream(posts, p)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		inst, _ := mqdp.NewInstance(posts, numLabels)
		var sel []int
		for _, e := range emissions {
			for i := 0; i < inst.Len(); i++ {
				if inst.Post(i).ID == e.Post.ID {
					sel = append(sel, i)
				}
			}
		}
		if err := mqdp.Verify(inst, 1, sel); err != nil {
			t.Errorf("%s emissions don't cover: %v", algo, err)
		}
	}
	if _, err := mqdp.NewStream(mqdp.StreamAlgorithm(42), 1, 1, 1); !errors.Is(err, mqdp.ErrUnsupported) {
		t.Error("unknown streaming algorithm accepted")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if mqdp.ScanPlus.String() != "Scan+" || mqdp.GreedySC.String() != "GreedySC" {
		t.Error("offline algorithm names wrong")
	}
	if mqdp.StreamGreedyPlus.String() != "StreamGreedySC+" || mqdp.Instant.String() != "Instant" {
		t.Error("streaming algorithm names wrong")
	}
	if mqdp.Algorithm(99).String() == "" || mqdp.StreamAlgorithm(99).String() == "" {
		t.Error("unknown values should still stringify")
	}
}
