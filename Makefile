# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race bench bench-json bench-index bench-wire bench-push bench-obs bench-trace bench-routing bench-wal routing-smoke trace-smoke chaos crash push-soak experiments smoke fuzz fuzz-smoke vet lint check clean

all: build test

# The default verification gate: build, tests, static checks, the chaos
# suite under the race detector, the kill-9 durability drill, the
# push-delivery soak, the instrumented-vs-disabled solver overhead
# comparison, the end-to-end trace-propagation smoke, the wire fuzz
# corpus smoke, and the subscription-routing smoke (equivalence property
# under -race plus the reduced fan-out baseline matrix).
check: build test vet chaos crash push-soak bench-obs trace-smoke fuzz-smoke routing-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus solver micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the machine-readable serial-vs-parallel solver timing baseline.
bench-json:
	$(GO) run ./cmd/mqdp-bench -json > BENCH_baseline.json

# Regenerate the index read-path baseline: each optimized query path
# (time-skipping, galloping intersection, bounded top-k) against its naive
# linear-scan reference in the same run.
bench-index:
	$(GO) run ./cmd/mqdp-bench -json-index > BENCH_index.json

# Wire-format comparison: codec micro-benchmarks (JSON vs binary frames,
# raw and compressed), then the machine-readable baseline with the full
# server+client e2e ingest/poll cycle per format.
bench-wire:
	$(GO) test -run NONE -bench 'Wire' -benchmem ./internal/wire
	$(GO) run ./cmd/mqdp-bench -json-wire > BENCH_wire.json

# Fault-schedule end-to-end suite under the race detector: scripted drops,
# delays, 5xx, processor panics and admission sheds driven through
# client → HTTP → server → stream. Schedules are seeded in-test, so the
# runs are deterministic.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestShutdownMidIngest' ./internal/server

# Durability drill under the race detector: the in-process WAL /
# snapshot / torn-tail / degraded-read-only recovery suite, then the
# kill-9 harness — a real mqdp-server process SIGKILLed twice mid-stream
# and restarted on its data directory, with a retrying client driving
# the stream to byte-identical emissions against an uninterrupted run.
crash:
	$(GO) test -race -count=1 -run 'TestDurability|TestCrashRecoveryE2E' ./internal/server

# Push-delivery soak under the race detector: many idle SSE streams plus
# a few hot ones through sustained ingest, asserting the goroutine count
# stays flat and the active-stream gauge drains to zero, alongside the
# stream/poll/unsubscribe churn hammer.
push-soak:
	$(GO) test -race -count=1 -run 'TestPushSoak|TestStreamChurnHammer' ./internal/server

# Regenerate the push-vs-poll delivery-latency baseline (BENCH_push.json):
# the same paced feed consumed over an SSE stream and over interval polls,
# reporting per-emission delivery latency for each.
bench-push:
	$(GO) run ./cmd/mqdp-bench -json-push > BENCH_push.json

# Compare BenchmarkScan with instrumentation disabled vs enabled: the
# disabled path must sit within noise of the pre-obs solver.
bench-obs:
	$(GO) test -run NONE -bench 'ScanObs' -benchtime 300x ./internal/core

# Regenerate the tracing-overhead baseline (BENCH_trace.json): the same
# ingest+poll workload with no registry, registry-without-tracer (the
# production default) and full span tracing with tail-based retention.
bench-trace:
	$(GO) run ./cmd/mqdp-bench -json-trace > BENCH_trace.json

# Regenerate the subscription-routing fan-out baseline (BENCH_routing.json):
# per-post ingest cost with the inverted keyword → subscription index vs
# brute-force broadcast, at 100/1k/10k subscriptions across match rates
# (acceptance floor: ≥5x at 10k subscriptions, ≤5% match rate).
bench-routing:
	$(GO) run ./cmd/mqdp-bench -json-routing > BENCH_routing.json

# Regenerate the durability cost baseline (BENCH_wal.json): per-post
# ingest cost with the WAL off and under each fsync policy, snapshot
# cost, and recovery time for full-WAL replay vs snapshot + suffix.
bench-wal:
	$(GO) run ./cmd/mqdp-bench -json-wal > BENCH_wal.json

# Routing smoke for `make check`: the emissions-byte-identical property
# (routing on/off × worker counts, quarantine mid-stream) under the race
# detector, then the reduced baseline matrix to catch fan-out regressions.
routing-smoke:
	$(GO) test -race -count=1 -run 'TestRoutingEquivalence|TestRoutingSkippedAccounting|TestIngestScratchBounded' ./internal/server
	$(GO) run ./cmd/mqdp-bench -json-routing -scale smoke > /dev/null

# End-to-end trace propagation under the race detector: one post followed
# client span → HTTP → admission → fan-out → emission → SSE frame, plus
# traceparent survival across retries and stream reconnects.
trace-smoke:
	$(GO) test -race -count=1 -run 'TestTrace' ./internal/server

# Regenerate every table and figure at full scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/mqdp-bench -run all -scale full | tee experiments_full.txt

smoke:
	$(GO) run ./cmd/mqdp-bench -run all -scale smoke

# Short fuzz pass over the parsing/hashing surfaces.
fuzz:
	$(GO) test -fuzz=FuzzTokenize -fuzztime=10s ./internal/textutil
	$(GO) test -fuzz=FuzzParseDIMACS -fuzztime=10s ./internal/sat
	$(GO) test -fuzz=FuzzComputeDeterministic -fuzztime=10s ./internal/simhash
	$(GO) test -fuzz=FuzzReadPosts -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzBinaryRoundTrip -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzWALSegment -fuzztime=10s ./internal/wal

# Replay the checked-in fuzz seed corpora (no fuzzing engine): fast
# enough for `make check`, still catches decoder and WAL-framing
# regressions on the malformed seeds.
fuzz-smoke:
	$(GO) test -run 'Fuzz' -count=1 ./internal/wire ./internal/wal

# vet fails the build on any vet finding or unformatted file.
vet:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet

clean:
	$(GO) clean ./...
