# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race bench bench-json experiments smoke fuzz lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus solver micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the machine-readable serial-vs-parallel solver timing baseline.
bench-json:
	$(GO) run ./cmd/mqdp-bench -json > BENCH_baseline.json

# Regenerate every table and figure at full scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/mqdp-bench -run all -scale full | tee experiments_full.txt

smoke:
	$(GO) run ./cmd/mqdp-bench -run all -scale smoke

# Short fuzz pass over the parsing/hashing surfaces.
fuzz:
	$(GO) test -fuzz=FuzzTokenize -fuzztime=10s ./internal/textutil
	$(GO) test -fuzz=FuzzParseDIMACS -fuzztime=10s ./internal/sat
	$(GO) test -fuzz=FuzzComputeDeterministic -fuzztime=10s ./internal/simhash
	$(GO) test -fuzz=FuzzReadPosts -fuzztime=10s ./internal/wire

lint:
	$(GO) vet ./...
	gofmt -l .

clean:
	$(GO) clean ./...
