package mqdp_test

import (
	"testing"

	"mqdp"
	"mqdp/internal/synth"
)

func TestSolvePortfolioDefaultsToBestApproximation(t *testing.T) {
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration: 600, RatePerSec: 1.5, NumLabels: 4, Overlap: 1.8, Seed: 13,
	})
	inst, err := mqdp.NewInstance(posts, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := mqdp.Options{Lambda: 30}
	best, err := mqdp.SolvePortfolio(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []mqdp.Algorithm{mqdp.Scan, mqdp.ScanPlus, mqdp.GreedySC} {
		o := opts
		o.Algorithm = algo
		c, err := mqdp.Solve(inst, o)
		if err != nil {
			t.Fatal(err)
		}
		if best.Size() > c.Size() {
			t.Errorf("portfolio (%d via %s) beaten by %s (%d)", best.Size(), best.Algorithm, algo, c.Size())
		}
	}
	if err := mqdp.Verify(inst, 30, best.Selected); err != nil {
		t.Errorf("portfolio winner invalid: %v", err)
	}
}

func TestSolvePortfolioSkipsFailingExactSolver(t *testing.T) {
	// OPT with a tiny work budget fails; the portfolio must still return
	// the surviving approximation.
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration: 300, RatePerSec: 2, NumLabels: 3, Seed: 14,
	})
	inst, err := mqdp.NewInstance(posts, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := mqdp.Options{Lambda: 20, OPT: &mqdp.OPTOptions{MaxWork: 1}}
	best, err := mqdp.SolvePortfolio(inst, opts, mqdp.OPT, mqdp.GreedySC)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm != "GreedySC" {
		t.Errorf("winner = %s, want GreedySC (OPT budget-limited)", best.Algorithm)
	}
}

func TestSolvePortfolioAllFail(t *testing.T) {
	posts, numLabels := figure2Posts()
	inst, _ := mqdp.NewInstance(posts, numLabels)
	if _, err := mqdp.SolvePortfolio(inst, mqdp.Options{Lambda: 1, OPT: &mqdp.OPTOptions{MaxWork: 1}}, mqdp.OPT); err == nil {
		t.Error("all-failed portfolio returned a cover")
	}
}

func TestSolvePortfolioPrefersExactWhenFeasible(t *testing.T) {
	posts, numLabels := figure2Posts()
	inst, _ := mqdp.NewInstance(posts, numLabels)
	best, err := mqdp.SolvePortfolio(inst, mqdp.Options{Lambda: 1}, mqdp.Scan, mqdp.OPT)
	if err != nil {
		t.Fatal(err)
	}
	if best.Size() != 2 {
		t.Errorf("portfolio size = %d, want the optimum 2", best.Size())
	}
}
