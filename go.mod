module mqdp

go 1.22
