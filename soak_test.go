package mqdp_test

import (
	"testing"

	"mqdp"
	"mqdp/internal/core"
	"mqdp/internal/stream"
	"mqdp/internal/synth"
)

// TestDayScaleSoak replays a full synthetic day (the paper's evaluation
// scale, ÷10 rate) through every offline algorithm and streaming processor,
// asserting the cross-cutting invariants: all covers verify, exact ordering
// relations hold, and every emission respects its delay bound. Skipped under
// -short.
func TestDayScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("day-scale soak skipped in -short mode")
	}
	const numLabels = 10
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration:   86400,
		RatePerSec: 0.105 * numLabels,
		NumLabels:  numLabels,
		Overlap:    1.4,
		Diurnal:    true,
		Seed:       77,
	})
	inst, err := mqdp.NewInstance(posts, numLabels)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d posts over 24h, %d labels", inst.Len(), numLabels)

	lambda := 600.0
	sizes := map[mqdp.Algorithm]int{}
	for _, algo := range []mqdp.Algorithm{mqdp.Scan, mqdp.ScanPlus, mqdp.GreedySC} {
		cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: lambda, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		sizes[algo] = cover.Size()
		st, err := inst.Stats(core.FixedLambda(lambda), cover.Selected)
		if err != nil {
			t.Fatalf("%s stats: %v", algo, err)
		}
		if st.MaxPairDistance > lambda {
			t.Errorf("%s: pair distance %v exceeds λ", algo, st.MaxPairDistance)
		}
		if st.CompressionRatio > 0.2 {
			t.Errorf("%s: compression ratio %v suspiciously weak at λ=10min", algo, st.CompressionRatio)
		}
	}
	if sizes[mqdp.ScanPlus] > sizes[mqdp.Scan] {
		t.Errorf("Scan+ (%d) worse than Scan (%d)", sizes[mqdp.ScanPlus], sizes[mqdp.Scan])
	}

	tau := 30.0
	for _, algo := range []mqdp.StreamAlgorithm{
		mqdp.StreamScan, mqdp.StreamScanPlus, mqdp.StreamGreedy, mqdp.StreamGreedyPlus,
	} {
		proc, err := mqdp.NewStream(algo, numLabels, lambda, tau)
		if err != nil {
			t.Fatal(err)
		}
		es, err := mqdp.RunStream(posts, proc)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		byID := make(map[int64]int, inst.Len())
		for i := 0; i < inst.Len(); i++ {
			byID[inst.Post(i).ID] = i
		}
		sel := make([]int, 0, len(es))
		for _, e := range es {
			sel = append(sel, byID[e.Post.ID])
			if d := e.EmitAt - e.Post.Value; d < -1e-9 || d > tau+1e-9 {
				t.Fatalf("%s: delay %v outside [0, %v]", algo, d, tau)
			}
		}
		if err := mqdp.Verify(inst, lambda, sel); err != nil {
			t.Fatalf("%s emissions do not cover the day: %v", algo, err)
		}
		// Streaming can't beat the best offline solution on this data by
		// definition (offline optimum ≤ any online one is not guaranteed
		// per-algorithm, but staying within 5× of GreedySC flags blowups).
		if len(es) > 5*sizes[mqdp.GreedySC] {
			t.Errorf("%s emitted %d posts, > 5× offline GreedySC (%d)", algo, len(es), sizes[mqdp.GreedySC])
		}
	}

	// The adaptive processor also survives the day.
	adaptive, err := stream.NewAdaptiveScan(numLabels, lambda, tau)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Run(posts, adaptive); err != nil {
		t.Fatalf("adaptive: %v", err)
	}
}
