package mqdp_test

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mqdp"
	"mqdp/internal/core"
	"mqdp/internal/faultinject"
	"mqdp/internal/obs"
	"mqdp/internal/server"
	"mqdp/internal/stream"
	"mqdp/internal/synth"
)

// TestDayScaleSoak replays a full synthetic day (the paper's evaluation
// scale, ÷10 rate) through every offline algorithm and streaming processor,
// asserting the cross-cutting invariants: all covers verify, exact ordering
// relations hold, and every emission respects its delay bound. Skipped under
// -short.
func TestDayScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("day-scale soak skipped in -short mode")
	}
	const numLabels = 10
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration:   86400,
		RatePerSec: 0.105 * numLabels,
		NumLabels:  numLabels,
		Overlap:    1.4,
		Diurnal:    true,
		Seed:       77,
	})
	inst, err := mqdp.NewInstance(posts, numLabels)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d posts over 24h, %d labels", inst.Len(), numLabels)

	lambda := 600.0
	sizes := map[mqdp.Algorithm]int{}
	for _, algo := range []mqdp.Algorithm{mqdp.Scan, mqdp.ScanPlus, mqdp.GreedySC} {
		cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: lambda, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		sizes[algo] = cover.Size()
		st, err := inst.Stats(core.FixedLambda(lambda), cover.Selected)
		if err != nil {
			t.Fatalf("%s stats: %v", algo, err)
		}
		if st.MaxPairDistance > lambda {
			t.Errorf("%s: pair distance %v exceeds λ", algo, st.MaxPairDistance)
		}
		if st.CompressionRatio > 0.2 {
			t.Errorf("%s: compression ratio %v suspiciously weak at λ=10min", algo, st.CompressionRatio)
		}
	}
	if sizes[mqdp.ScanPlus] > sizes[mqdp.Scan] {
		t.Errorf("Scan+ (%d) worse than Scan (%d)", sizes[mqdp.ScanPlus], sizes[mqdp.Scan])
	}

	tau := 30.0
	for _, algo := range []mqdp.StreamAlgorithm{
		mqdp.StreamScan, mqdp.StreamScanPlus, mqdp.StreamGreedy, mqdp.StreamGreedyPlus,
	} {
		proc, err := mqdp.NewStream(algo, numLabels, lambda, tau)
		if err != nil {
			t.Fatal(err)
		}
		es, err := mqdp.RunStream(posts, proc)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		byID := make(map[int64]int, inst.Len())
		for i := 0; i < inst.Len(); i++ {
			byID[inst.Post(i).ID] = i
		}
		sel := make([]int, 0, len(es))
		for _, e := range es {
			sel = append(sel, byID[e.Post.ID])
			if d := e.EmitAt - e.Post.Value; d < -1e-9 || d > tau+1e-9 {
				t.Fatalf("%s: delay %v outside [0, %v]", algo, d, tau)
			}
		}
		if err := mqdp.Verify(inst, lambda, sel); err != nil {
			t.Fatalf("%s emissions do not cover the day: %v", algo, err)
		}
		// Streaming can't beat the best offline solution on this data by
		// definition (offline optimum ≤ any online one is not guaranteed
		// per-algorithm, but staying within 5× of GreedySC flags blowups).
		if len(es) > 5*sizes[mqdp.GreedySC] {
			t.Errorf("%s emitted %d posts, > 5× offline GreedySC (%d)", algo, len(es), sizes[mqdp.GreedySC])
		}
	}

	// The adaptive processor also survives the day.
	adaptive, err := stream.NewAdaptiveScan(numLabels, lambda, tau)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Run(posts, adaptive); err != nil {
		t.Fatalf("adaptive: %v", err)
	}
}

// TestSoakWithFaults replays an hour of synthetic traffic through the full
// HTTP serving path while a low-rate probabilistic fault schedule drops
// requests and responses, injects 503s and latency, and panics one
// subscription's pipeline mid-stream. It then reconciles the books: the
// retrying client delivered every post exactly once, the observability
// counters match the injector's own record, and every healthy subscription
// kept a contiguous, non-blank emission sequence. Skipped under -short.
func TestSoakWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-schedule soak skipped in -short mode")
	}
	world := synth.NewWorld(synth.WorldConfig{Seed: 31})
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 3600, RatePerSec: 2, DupRatio: 0, Seed: 32})

	core := server.New(0, 0)
	core.SetParallelism(4)
	reg := obs.NewRegistry()
	core.SetObs(reg)
	srvInj, err := faultinject.ParseSchedule("sub2.process@40=panic:soak-injected", 5)
	if err != nil {
		t.Fatal(err)
	}
	core.SetFaultInjector(srvInj)
	ts := httptest.NewServer(server.Handler(core))
	defer ts.Close()

	clInj, err := faultinject.ParseSchedule(
		"POST /ingest@p0.03=drop; POST /ingest@p0.02=droprx; POST /ingest@p0.015=status:503; POST /ingest@p0.01=delay:2ms", 6)
	if err != nil {
		t.Fatal(err)
	}
	cl := server.NewClient(ts.URL)
	cl.HTTPClient = &http.Client{Transport: faultinject.NewTransport(nil, clInj), Timeout: 10 * time.Second}
	cl.Retry = &server.RetryPolicy{MaxAttempts: 25, BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond, Seed: 9}
	cl.SetObs(reg)

	rng := rand.New(rand.NewSource(33))
	ids := make([]int64, 0, 8)
	algos := []string{"streamscan", "streamscan+", "streamgreedy", "streamgreedy+", "instant"}
	for i := 0; i < 8; i++ {
		id, err := cl.Subscribe(server.SubscriptionConfig{
			Topics:    world.MatchTopics(world.SampleLabelSet(rng, 2+i%3)),
			Lambda:    float64(60 * (1 + i%3)),
			Tau:       float64(30 * (i % 2)),
			Algorithm: algos[i%len(algos)],
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	const batchSize = 10
	for at := 0; at < len(tweets); at += batchSize {
		end := min(at+batchSize, len(tweets))
		batch := make([]server.Post, 0, end-at)
		for _, tw := range tweets[at:end] {
			batch = append(batch, server.Post{ID: tw.ID, Time: tw.Time, Text: tw.Text})
		}
		n, err := cl.IngestAccepted(batch...)
		if err != nil || n != len(batch) {
			t.Fatalf("batch at %d: accepted (%d, %v), want (%d, nil)", at, n, err, len(batch))
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	// Exactly once: accepted == stream length even though requests and
	// responses were lost along the way.
	if got := core.Stats().Ingested; got != int64(len(tweets)) {
		t.Fatalf("server ingested %d posts, stream has %d", got, len(tweets))
	}

	// Reconcile the observability counters against the injector's record.
	cs := cl.RetryStats()
	counts := clInj.Counts()
	injectedFailures := counts["drop"] + counts["droprx"] + counts["status"]
	if injectedFailures == 0 {
		t.Fatal("probabilistic schedule injected no failures; seed no longer exercises the fault paths")
	}
	if cs.Retries != injectedFailures {
		t.Errorf("client retries = %d, injector failures = %d", cs.Retries, injectedFailures)
	}
	m := core.Metrics()
	if cs.ShedResponses != 0 || m.Sheds != 0 {
		t.Errorf("no admission configured, but sheds = (client %d, server %d)", cs.ShedResponses, m.Sheds)
	}
	if cs.BreakerOpens != 0 {
		t.Errorf("no breaker configured, but opens = %d", cs.BreakerOpens)
	}
	if got, want := m.Quarantines, srvInj.Counts()["panic"]; got != want || got != 1 {
		t.Errorf("quarantines = %d, injected panics = %d, want exactly 1", got, want)
	}
	st, err := core.SubscriptionStats(2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quarantined || !strings.Contains(st.QuarantineReason, "soak-injected") {
		t.Fatalf("subscription 2 not quarantined as scripted: %+v", st)
	}

	// Healthy subscriptions: contiguous seqs, no blank texts.
	for _, id := range ids {
		if id == 2 {
			continue
		}
		es, err := core.Emissions(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(es) == 0 {
			t.Errorf("subscription %d emitted nothing over an hour of traffic", id)
		}
		for i, e := range es {
			if i > 0 && e.Seq != es[i-1].Seq+1 {
				t.Fatalf("subscription %d: seq gap %d → %d", id, es[i-1].Seq, e.Seq)
			}
			if e.Text == "" {
				t.Fatalf("subscription %d: blank emission %+v", id, e)
			}
		}
	}
	t.Logf("soak with faults: %d posts, %d retries (drop %d, droprx %d, 503 %d, delay %d), 1 quarantine",
		len(tweets), cs.Retries, counts["drop"], counts["droprx"], counts["status"], counts["delay"])
}
